"""The unified `repro.api` session: guarded requests, engines, batching.

The acceptance bar for the API boundary: every request returns a
structured Result, no FreezeMLError ever escapes, batch checks are
isolated per program, and all four engines answer through one surface.
"""

import pytest

from repro.api import ENGINES, Result, Session, check_programs
from repro.core.terms import Var
from repro.corpus.examples import ALL_EXAMPLES, EXAMPLES
from repro.diagnostics import Severity
from repro.errors import FreezeMLError


class TestResults:
    def test_success_carries_type_and_rendering(self):
        result = Session().infer("poly ~id")
        assert result.ok and bool(result)
        assert result.type_str == "Int * Bool"
        assert result.rendered == "Int * Bool"
        assert result.diagnostics == ()

    def test_failure_carries_diagnostics_not_exceptions(self):
        result = Session().infer("auto id")
        assert not result.ok and not bool(result)
        assert result.ty is None
        (diag,) = result.diagnostics
        assert diag.code == "FML102"
        assert diag.severity is Severity.ERROR
        assert "cannot unify" in diag.message
        assert len(diag.types) == 2

    def test_parse_failure_has_code_and_span(self):
        result = Session().infer("let = in")
        (diag,) = result.diagnostics
        assert diag.code == "FML001"
        assert (diag.span.line, diag.span.column) == (1, 5)

    def test_unbound_variable_code(self):
        result = Session().infer("wibble 1")
        (diag,) = result.diagnostics
        assert diag.code == "FML101"

    def test_to_dict_is_json_ready(self):
        import json

        payload = Session().infer("auto id").to_dict()
        text = json.dumps(payload)
        assert '"FML102"' in text
        assert payload["ok"] is False and payload["type"] is None

    def test_accepts_pre_parsed_terms(self):
        result = Session().infer(Var("id"))
        assert result.ok
        assert result.type_str == "a -> a"


class TestSpans:
    def test_inference_error_points_at_offending_subterm(self):
        # The failure is the application `auto id` on line 2, not the
        # whole program.
        result = Session().infer("let go = fun x -> x in\nauto id")
        (diag,) = result.diagnostics
        assert diag.span is not None
        assert diag.span.line == 2

    def test_parse_error_span_is_token_wide(self):
        result = Session().infer("choose id Wrong")
        (diag,) = result.diagnostics
        assert diag.code == "FML001"
        assert diag.span.column == 11
        assert diag.span.end_column == 16  # end of `Wrong`

    def test_fallback_span_covers_whole_source(self):
        # HMF errors carry no term spans; the diagnostic still points at
        # the source as a whole.
        result = Session(engine="hmf").infer("poly (fun x -> x) wibble")
        (diag,) = result.diagnostics
        assert diag.span is not None
        assert diag.span.line == 1


class TestSessionState:
    def test_define_extends_env_and_values(self):
        session = Session()
        defined = session.define("myid", "$(fun x -> x)")
        assert defined.ok
        assert defined.rendered == "myid : forall a. a -> a"
        assert session.bindings["myid"] == "forall a. a -> a"
        assert session.infer("poly ~myid").ok
        assert session.evaluate("myid 42").rendered == "42"

    def test_failed_define_leaves_session_untouched(self):
        session = Session()
        result = session.define("broken", "auto id")
        assert not result.ok
        assert "broken" not in session.bindings
        assert not session.infer("broken").ok

    def test_infer_definition_is_type_only(self):
        session = Session()
        result = session.infer_definition("it", "$(fun x -> x)")
        assert result.ok and result.type_str == "forall a. a -> a"
        assert "it" not in session.bindings
        assert not session.infer("it").ok

    def test_value_restricted_define_keeps_session_sound(self):
        # Seed bug: `let c = choose id` stores a type with a free
        # variable; the environment must stay well-formed afterwards.
        session = Session()
        defined = session.define("c", "choose id")
        assert defined.ok
        assert defined.type_str == "(a -> a) -> a -> a"
        # The residual variable is fixed in the session Delta...
        assert "a" in session.delta
        # ...and the session keeps answering.
        assert session.infer("id 1").type_str == "Int"
        assert session.infer("c").type_str == "(a -> a) -> a -> a"
        # The fixed variable is rigid: it cannot be instantiated later.
        result = session.infer("c inc")
        assert not result.ok
        assert result.diagnostics[0].code == "FML102"

    def test_residual_vars_of_two_defines_stay_distinct(self):
        session = Session()
        session.define("c", "choose id")
        session.define("d", "choose id")
        assert session.bindings["c"] == "(a -> a) -> a -> a"
        assert session.bindings["d"] == "(b -> b) -> b -> b"
        # A definition mentioning a fixed variable keeps its identity.
        session.define("c2", "c")
        assert session.bindings["c2"] == "(a -> a) -> a -> a"
        assert list(session.delta.names()) == ["a", "b"]

    def test_strategy_switch(self):
        session = Session()
        assert not session.infer("(head ids) 42").ok
        session.set_strategy("e")
        assert session.infer("(head ids) 42").type_str == "Int"

    def test_bad_strategy_and_engine_rejected(self):
        with pytest.raises(ValueError):
            Session(engine="mlton")
        with pytest.raises(ValueError):
            Session(strategy="zealous")
        with pytest.raises(ValueError):
            Session().set_strategy("zealous")

    def test_value_restriction_toggle(self):
        # F10 typechecks only without the value restriction.
        source = "let f = id id in (f 1, f true)"
        assert not Session().infer(source).ok
        assert Session(value_restriction=False).infer(source).ok

    def test_fork_isolates_bindings(self):
        session = Session()
        fork = session.fork()
        fork.define("local", "42")
        assert "local" in fork.bindings
        assert "local" not in session.bindings
        assert not session.infer("local").ok


class TestEngines:
    def test_all_engines_answer(self):
        for engine in ENGINES:
            result = Session(engine=engine).infer("fun x -> x")
            assert result.ok, (engine, result.diagnostics)
            assert result.engine == engine

    def test_hmf_engine(self):
        result = Session(engine="hmf").infer("poly id")
        assert result.ok and result.type_str == "Int * Bool"

    def test_ml_engine_accepts_the_fragment(self):
        result = Session(engine="ml").infer("let f = fun x -> x in f 1")
        assert result.ok and result.type_str == "Int"

    def test_ml_engine_rejects_freezing(self):
        result = Session(engine="ml").infer("poly ~id")
        (diag,) = result.diagnostics
        assert diag.code == "FML201"
        assert "fragment" in diag.message

    def test_systemf_engine_cross_checks(self):
        result = Session(engine="systemf").infer("poly ~id")
        assert result.ok and result.type_str == "Int * Bool"

    def test_per_call_engine_override(self):
        session = Session()
        assert not session.infer("poly id").ok
        assert session.infer("poly id", engine="hmf").ok


class TestRequests:
    def test_evaluate(self):
        result = Session().evaluate("poly ~id")
        assert result.ok and result.rendered == "(42, true)"

    def test_elaborate_payload(self):
        result = Session().elaborate("poly ~id")
        assert result.ok
        assert str(result.value.fterm) == "poly id"
        assert result.type_str == "Int * Bool"

    def test_derive_payload(self):
        result = Session().derive("single ~id")
        assert result.ok
        assert "[App]" in result.rendered and "[Freeze]" in result.rendered
        assert result.value.rule == "App"

    def test_run_program(self):
        program = (
            "sig f : forall a. a -> a\n"
            "def f x = x\n"
            "main = (f 1) + 41\n"
        )
        result = Session().run_program(program)
        assert result.ok
        assert result.rendered == "42 : Int"

    def test_run_program_reports_bad_program(self):
        result = Session().run_program("def f = \n")
        (diag,) = result.diagnostics
        assert diag.code == "FML001"

    def test_evaluation_error_is_a_diagnostic(self):
        result = Session().evaluate("wibble")
        (diag,) = result.diagnostics
        assert diag.code == "FML300"


class TestBatch:
    def test_check_auto_detects_program_format(self):
        session = Session()
        assert session.check("poly ~id").type_str == "Int * Bool"
        assert session.check("main = 1 + 2").type_str == "Int"

    def test_check_many_preserves_order(self):
        results = Session().check_many(["1", "true", "auto id"])
        assert [r.ok for r in results] == [True, True, False]
        assert [r.type_str for r in results[:2]] == ["Int", "Bool"]

    def test_check_many_is_isolated(self):
        # A definition in one program must not leak into the next, in
        # either direction.
        programs = [
            "let leak = 42 in leak",
            "leak",
            "let leak = true in leak",
        ]
        results = Session().check_many(programs)
        assert [r.ok for r in results] == [True, False, True]
        assert results[0].type_str == "Int"
        assert results[2].type_str == "Bool"

    def test_check_many_over_figure1_corpus(self):
        """The serving-style acceptance check: the whole Figure 1 corpus
        through one batch call, per-program results, no state leakage
        (results equal a one-session-per-program rerun)."""
        sources = [x.source for x in EXAMPLES if not x.extra_env]
        batch = Session().check_many(sources)
        assert len(batch) == len(sources)
        singles = [Session().check(src) for src in sources]
        assert [r.ok for r in batch] == [r.ok for r in singles]
        assert [r.type_str for r in batch] == [r.type_str for r in singles]

    def test_check_programs_one_shot(self):
        with pytest.deprecated_call():
            results = check_programs(["poly ~id"], engine="systemf")
        assert results[0].ok and results[0].engine == "systemf"


class TestNoExceptionEscapes:
    """No FreezeMLError crosses the API boundary, corpus-wide."""

    def test_whole_corpus_never_raises(self):
        session = Session()
        for example in ALL_EXAMPLES:
            fork = session.fork()
            fork.env = example.env()
            try:
                for request in (fork.infer, fork.elaborate, fork.derive):
                    result = request(example.term())
                    assert isinstance(result, Result)
            except FreezeMLError as exc:  # pragma: no cover - the bug
                pytest.fail(f"{example.id} leaked {type(exc).__name__}: {exc}")

    def test_garbage_sources_never_raise(self):
        session = Session()
        for garbage in ("", "((((", "let in", "~", "fun ->", "1 +", "@", "?"):
            for request in (
                session.infer,
                session.evaluate,
                session.elaborate,
                session.derive,
                session.check,
            ):
                result = request(garbage)
                assert not result.ok
                assert result.diagnostics, (garbage, request)
