"""Unit tests for kinds and kind environments (Figures 3 and 12)."""

import pytest

from repro.core.kinds import Kind, KindEnv, fixed_env


class TestKind:
    def test_join(self):
        assert Kind.MONO.join(Kind.MONO) is Kind.MONO
        assert Kind.MONO.join(Kind.POLY) is Kind.POLY
        assert Kind.POLY.join(Kind.MONO) is Kind.POLY
        assert Kind.POLY.join(Kind.POLY) is Kind.POLY

    def test_leq_upcast(self):
        assert Kind.MONO.leq(Kind.POLY)
        assert Kind.MONO.leq(Kind.MONO)
        assert Kind.POLY.leq(Kind.POLY)
        assert not Kind.POLY.leq(Kind.MONO)


class TestKindEnv:
    def test_extend_and_lookup(self):
        env = KindEnv.empty().extend("a", Kind.MONO).extend("b", Kind.POLY)
        assert env.kind_of("a") is Kind.MONO
        assert env.kind_of("b") is Kind.POLY
        assert "a" in env and "c" not in env

    def test_duplicate_rejected(self):
        env = KindEnv.empty().extend("a", Kind.MONO)
        with pytest.raises(ValueError):
            env.extend("a", Kind.POLY)

    def test_order_preserved(self):
        env = fixed_env(["x", "y", "z"])
        assert env.names() == ("x", "y", "z")

    def test_remove(self):
        env = fixed_env(["a", "b", "c"]).remove(["b"])
        assert env.names() == ("a", "c")

    def test_set_kinds_demotion(self):
        env = KindEnv([("a", Kind.POLY), ("b", Kind.POLY)])
        demoted = env.set_kinds(["a"], Kind.MONO)
        assert demoted.kind_of("a") is Kind.MONO
        assert demoted.kind_of("b") is Kind.POLY
        # original untouched (immutability)
        assert env.kind_of("a") is Kind.POLY

    def test_concat_requires_disjoint(self):
        left = fixed_env(["a"])
        with pytest.raises(ValueError):
            left.concat(fixed_env(["a"]))
        assert left.concat(fixed_env(["b"])).names() == ("a", "b")

    def test_disjoint(self):
        assert fixed_env(["a"]).disjoint(fixed_env(["b"]))
        assert not fixed_env(["a"]).disjoint(["a"])

    def test_lookup_missing(self):
        assert KindEnv.empty().lookup("a") is None
        with pytest.raises(KeyError):
            KindEnv.empty().kind_of("a")
