"""The examples/ directory stays runnable (deliverable b)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(SCRIPTS) >= 3


@pytest.mark.parametrize("script", SCRIPTS, ids=[s.stem for s in SCRIPTS])
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert f"{script.stem} ok" in result.stdout
