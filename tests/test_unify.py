"""Unit tests for the unification algorithm (Figure 15)."""

import pytest

from repro.core.kinds import Kind, KindEnv
from repro.core.subst import Subst
from repro.core.types import TVar, alpha_equal
from repro.core.unify import demote, unify
from repro.errors import (
    MonomorphismError,
    OccursCheckError,
    SkolemEscapeError,
    UnificationError,
)
from tests.helpers import fixed, flexible, t

EMPTY = KindEnv.empty()


def u(theta, left, right, delta=EMPTY):
    return unify(delta, theta, t(left), t(right))


class TestVariables:
    def test_same_rigid_variable(self):
        theta_out, subst = u(EMPTY, "a", "a", delta=fixed("a"))
        assert subst.is_identity()

    def test_same_flexible_variable(self):
        theta_out, subst = u(flexible(a="poly"), "a", "a")
        assert subst.is_identity()
        assert "a" in theta_out

    def test_rigid_mismatch(self):
        with pytest.raises(UnificationError):
            u(EMPTY, "a", "b", delta=fixed("a", "b"))

    def test_flexible_binds_left_and_right(self):
        for left, right in [("a", "Int"), ("Int", "a")]:
            theta_out, subst = u(flexible(a="poly"), left, right)
            assert subst(TVar("a")) == t("Int")
            assert "a" not in theta_out

    def test_flexible_binds_polymorphic_type(self):
        theta_out, subst = u(flexible(a="poly"), "a", "forall b. b -> b")
        assert alpha_equal(subst(TVar("a")), t("forall b. b -> b"))

    def test_mono_flexible_rejects_polymorphic_type(self):
        with pytest.raises(MonomorphismError):
            u(flexible(a="mono"), "a", "forall b. b -> b")

    def test_occurs_check(self):
        with pytest.raises(OccursCheckError):
            u(flexible(a="poly"), "a", "List a")

    def test_rigid_vs_flexible(self):
        theta_out, subst = u(flexible(x="mono"), "x", "a", delta=fixed("a"))
        assert subst(TVar("x")) == TVar("a")


class TestDemotion:
    def test_demote_only_for_mono(self):
        theta = flexible(a="poly", b="poly")
        assert demote(Kind.POLY, theta, ["a"]) == theta
        demoted = demote(Kind.MONO, theta, ["a"])
        assert demoted.kind_of("a") is Kind.MONO
        assert demoted.kind_of("b") is Kind.POLY

    def test_binding_mono_var_demotes_type_vars(self):
        # unifying a:mono with (b -> c) demotes b and c to mono
        theta = flexible(a="mono", b="poly", c="poly")
        theta_out, subst = u(theta, "a", "b -> c")
        assert theta_out.kind_of("b") is Kind.MONO
        assert theta_out.kind_of("c") is Kind.MONO

    def test_demoted_var_cannot_become_polymorphic_later(self):
        theta = flexible(a="mono", b="poly")
        theta1, s1 = u(theta, "a", "List b")
        with pytest.raises(MonomorphismError):
            unify(EMPTY, theta1, s1(t("b")), t("forall c. c"))


class TestConstructors:
    def test_pointwise(self):
        theta_out, subst = u(flexible(a="poly", b="poly"), "a -> b", "Int -> Bool")
        assert subst(t("a -> b")) == t("Int -> Bool")

    def test_threading_between_arguments(self):
        theta_out, subst = u(flexible(a="poly", b="poly"), "a -> a", "b -> Int")
        assert subst(TVar("a")) == t("Int")
        assert subst(TVar("b")) == t("Int")

    def test_constructor_clash(self):
        with pytest.raises(UnificationError):
            u(EMPTY, "Int", "Bool")
        with pytest.raises(UnificationError):
            u(flexible(a="poly"), "List a", "Int -> Int")

    def test_deep(self):
        theta_out, subst = u(
            flexible(a="poly"), "List (List a)", "List (List (Int * Bool))"
        )
        assert subst(TVar("a")) == t("Int * Bool")


class TestQuantifiers:
    def test_alpha_equivalent_foralls(self):
        _theta, subst = u(EMPTY, "forall a. a -> a", "forall b. b -> b")
        assert subst.is_identity()

    def test_forall_bodies_unify(self):
        theta_out, subst = u(
            flexible(x="poly"), "forall a. a -> x", "forall b. b -> Int"
        )
        assert subst(TVar("x")) == t("Int")

    def test_skolem_escape_rejected(self):
        # forall a. a -> a  vs  forall b. b -> x  would need x := skolem
        with pytest.raises(SkolemEscapeError):
            u(flexible(x="poly"), "forall a. a -> a", "forall b. b -> x")

    def test_quantifier_order_matters(self):
        with pytest.raises(UnificationError):
            u(
                EMPTY,
                "forall a b. a -> b -> a * b",
                "forall b a. a -> b -> a * b",
            )

    def test_forall_vs_arrow_fails(self):
        with pytest.raises(UnificationError):
            u(flexible(b="poly"), "forall a. a -> a", "b -> Int")

    def test_nested_quantifiers(self):
        _theta, subst = u(
            EMPTY,
            "forall a. a -> forall b. b -> b",
            "forall x. x -> forall y. y -> y",
        )
        assert subst.is_identity()


class TestSoundness:
    """Theorem 4: a returned unifier really unifies."""

    CASES = [
        (flexible(a="poly", b="poly"), "a -> Int", "Bool -> b"),
        (flexible(a="poly"), "List a", "List (forall c. c -> c)"),
        (flexible(a="mono", b="mono"), "a * a", "b * Int"),
        (flexible(x="poly"), "forall a. a -> x", "forall b. b -> List Int"),
    ]

    @pytest.mark.parametrize("theta,left,right", CASES)
    def test_unifier_unifies(self, theta, left, right):
        _theta_out, subst = u(theta, left, right)
        assert alpha_equal(subst(t(left)), subst(t(right)))
