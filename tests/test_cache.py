"""The persistent cross-process verdict cache (`repro.cache`).

Covers the encode/decode round trip (byte-exact `to_dict` payloads),
LRU eviction with recency refresh, the never-persist gate for volatile
verdicts, and the service integration: verdicts survive a service
"restart" (a fresh process would behave identically -- the cache is
plain SQLite) byte-identically, on both the serial and the pooled
dispatch path.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro import Result, Session
from repro.cache import PersistentCache, decode_result, encode_result
from repro.service import FaultPlan, SessionConfig, TypecheckService


def fresh_results(*sources: str) -> list[Result]:
    session = Session()
    return [session.fork().check(source) for source in sources]


class TestRoundTrip:
    def test_ok_result_to_dict_is_byte_exact(self):
        (result,) = fresh_results("poly ~id")
        decoded = decode_result(encode_result(result))
        assert decoded.to_dict() == result.to_dict()
        assert decoded.type_str == "Int * Bool"

    def test_failure_with_span_and_types_round_trips(self):
        (result,) = fresh_results("auto id")
        assert not result.ok and result.diagnostics
        decoded = decode_result(encode_result(result))
        assert decoded.to_dict() == result.to_dict()
        diag, expected = decoded.diagnostics[0], result.diagnostics[0]
        assert diag.code == expected.code
        assert diag.span == expected.span
        assert diag.types == expected.types
        assert diag.severity is expected.severity

    def test_parse_error_round_trips(self):
        (result,) = fresh_results("fun x ->")
        decoded = decode_result(encode_result(result))
        assert decoded.to_dict() == result.to_dict()

    def test_structured_payloads_are_not_stored(self):
        (result,) = fresh_results("poly ~id")
        decoded = decode_result(encode_result(result))
        assert decoded.ty is None  # type_str carries the JSON-visible part
        assert decoded.value is None


class TestPersistentCache:
    def test_get_put_and_miss(self, tmp_path):
        (result,) = fresh_results("poly ~id")
        with PersistentCache(tmp_path / "v.sqlite") as cache:
            assert cache.get("k") is None
            assert cache.misses == 1
            assert cache.put("k", result)
            stored = cache.get("k")
            assert stored is not None
            assert stored.to_dict() == result.to_dict()
            assert cache.hits == 1
            assert len(cache) == 1

    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "v.sqlite"
        (result,) = fresh_results("poly ~id")
        with PersistentCache(path) as cache:
            cache.put("k", result)
        with PersistentCache(path) as cache:
            stored = cache.get("k")
            assert stored is not None
            assert stored.to_dict() == result.to_dict()

    def test_lru_eviction_bounded_and_recency_refreshed(self, tmp_path):
        (result,) = fresh_results("poly ~id")
        with PersistentCache(tmp_path / "v.sqlite", max_entries=3) as cache:
            for key in ("a", "b", "c"):
                cache.put(key, result)
            assert cache.get("a") is not None  # refresh a's recency
            cache.put("d", result)  # evicts b, the least recently used
            assert len(cache) == 3
            assert cache.get("b") is None
            assert cache.get("a") is not None
            assert cache.get("d") is not None

    def test_replacing_a_key_does_not_grow(self, tmp_path):
        (result,) = fresh_results("poly ~id")
        with PersistentCache(tmp_path / "v.sqlite", max_entries=8) as cache:
            cache.put("k", result)
            cache.put("k", result)
            assert len(cache) == 1

    def test_volatile_verdicts_are_refused(self, tmp_path):
        # A crash verdict (FML911) from the recovery machinery: the
        # durable tier must refuse it no matter who calls put.
        plan = FaultPlan(crash=(0,), persistent=True, period=1)
        with TypecheckService(
            SessionConfig(fault_plan=plan), max_retries=0, retry_backoff=0.0
        ) as service:
            degraded = service.check("poly ~id").result
        assert degraded.diagnostics[0].code == "FML911"
        with PersistentCache(tmp_path / "v.sqlite") as cache:
            assert not cache.put("k", degraded)
            assert len(cache) == 0
            assert cache.get("k") is None

    def test_schema_mismatch_drops_the_file_contents(self, tmp_path):
        path = tmp_path / "v.sqlite"
        (result,) = fresh_results("poly ~id")
        with PersistentCache(path) as cache:
            cache.put("k", result)
        conn = sqlite3.connect(path)
        conn.execute("PRAGMA user_version = 999")
        conn.commit()
        conn.close()
        with PersistentCache(path) as cache:
            assert len(cache) == 0  # dropped, not misread

    def test_max_entries_validated(self, tmp_path):
        with pytest.raises(ValueError):
            PersistentCache(tmp_path / "v.sqlite", max_entries=0)

    def test_clear(self, tmp_path):
        (result,) = fresh_results("poly ~id")
        with PersistentCache(tmp_path / "v.sqlite") as cache:
            cache.put("k", result)
            cache.clear()
            assert len(cache) == 0


class TestCorruptionRecovery:
    """File-level corruption must degrade to a cold cache, never crash.

    Regression: `PersistentCache.__init__` used to let
    `sqlite3.DatabaseError` escape on a corrupt (non-SQLite-header)
    file -- only a wrong `user_version` was handled -- which took the
    whole server down at startup."""

    def _corrupt_by_truncation(self, path) -> bytes:
        """Write a valid populated store, then cut the file mid-bytes
        (past the header, so `connect` succeeds and the first PRAGMA
        read is what explodes)."""
        (result,) = fresh_results("poly ~id")
        with PersistentCache(path) as cache:
            for key in ("a", "b", "c"):
                cache.put(key, result)
        data = path.read_bytes()
        assert len(data) > 1024
        truncated = data[: len(data) // 2 + 7]
        path.write_bytes(truncated)
        return truncated

    def test_truncated_file_at_startup_is_quarantined_and_rebuilt(
        self, tmp_path
    ):
        path = tmp_path / "v.sqlite"
        corrupt_bytes = self._corrupt_by_truncation(path)
        with PersistentCache(path) as cache:  # regression: used to raise
            assert cache.rebuilds == 1
            assert len(cache) == 0  # cold, not crashed
            quarantined = tmp_path / "v.sqlite.corrupt-1"
            assert quarantined.read_bytes() == corrupt_bytes  # inspectable
            # The fresh store is fully functional.
            (result,) = fresh_results("poly ~id")
            assert cache.put("k", result)
            assert cache.get("k").to_dict() == result.to_dict()

    def test_zero_byte_file_at_startup_just_works(self, tmp_path):
        # SQLite treats an empty file as a brand-new database: no
        # quarantine needed, but it must not crash either.
        path = tmp_path / "v.sqlite"
        path.write_bytes(b"")
        with PersistentCache(path) as cache:
            assert cache.rebuilds == 0
            (result,) = fresh_results("poly ~id")
            assert cache.put("k", result)
            assert len(cache) == 1

    def test_garbage_header_at_startup_is_quarantined(self, tmp_path):
        path = tmp_path / "v.sqlite"
        path.write_bytes(b"this is not a sqlite database, honest\x00" * 40)
        with PersistentCache(path) as cache:
            assert cache.rebuilds == 1
            assert len(cache) == 0
            assert (tmp_path / "v.sqlite.corrupt-1").exists()

    def test_repeated_corruption_steps_the_quarantine_counter(self, tmp_path):
        path = tmp_path / "v.sqlite"
        for n in (1, 2):
            path.write_bytes(b"garbage " * 64)
            with PersistentCache(path) as cache:
                assert cache.rebuilds == 1
            assert (tmp_path / f"v.sqlite.corrupt-{n}").exists()

    def test_mid_run_corruption_degrades_get_to_a_miss(self, tmp_path):
        path = tmp_path / "v.sqlite"
        (result,) = fresh_results("poly ~id")
        cache = PersistentCache(path)
        try:
            cache.put("k", result)

            class ExplodingConnection:
                def execute(self, *args):
                    raise sqlite3.DatabaseError("database disk image is malformed")

                def close(self):
                    pass

            real = cache._conn
            cache._conn = ExplodingConnection()
            real.close()
            assert cache.get("k") is None  # miss, not an exception
            assert cache.rebuilds == 1
            assert cache.misses == 1
            assert (tmp_path / "v.sqlite.corrupt-1").exists()
            # The rebuilt store serves subsequent traffic normally.
            assert cache.put("k", result)
            assert cache.get("k") is not None
        finally:
            cache.close()

    def test_mid_run_corruption_retries_put_into_the_fresh_store(
        self, tmp_path
    ):
        path = tmp_path / "v.sqlite"
        (result,) = fresh_results("poly ~id")
        cache = PersistentCache(path)
        try:

            class ExplodingConnection:
                def execute(self, *args):
                    raise sqlite3.DatabaseError("malformed")

                def close(self):
                    pass

                def __enter__(self):
                    return self

                def __exit__(self, *exc_info):
                    return False

            real = cache._conn
            cache._conn = ExplodingConnection()
            real.close()
            assert cache.put("k", result)  # quarantine, rebuild, retry
            assert cache.rebuilds == 1
            assert cache.get("k").to_dict() == result.to_dict()
        finally:
            cache.close()

    def test_undecodable_row_is_dropped_and_served_as_a_miss(self, tmp_path):
        path = tmp_path / "v.sqlite"
        (result,) = fresh_results("poly ~id")
        with PersistentCache(path) as cache:
            cache.put("k", result)
            with cache._lock, cache._conn:
                cache._conn.execute(
                    "UPDATE verdicts SET payload = ? WHERE key = ?",
                    ('{"torn": true}', "k"),
                )
            assert cache.get("k") is None
            assert cache.misses == 1
            assert len(cache) == 0  # the torn row is gone
            assert cache.rebuilds == 0  # file-level store is fine

    def test_service_startup_over_a_corrupt_file_serves_normally(
        self, tmp_path
    ):
        path = tmp_path / "v.sqlite"
        path.write_bytes(b"\x00" * 3 + b"corrupt" * 100)
        with TypecheckService(
            SessionConfig(), persistent_cache=str(path)
        ) as service:
            response = service.check("poly ~id")
            assert response.ok
            assert service.persistent_cache.rebuilds == 1
            assert len(service.persistent_cache) == 1

    def test_flush_is_a_cheap_no_op_between_puts(self, tmp_path):
        (result,) = fresh_results("poly ~id")
        with PersistentCache(tmp_path / "v.sqlite") as cache:
            cache.put("k", result)
            cache.flush()
            assert cache.get("k") is not None


class TestServiceIntegration:
    """`TypecheckService(persistent_cache=...)`: the durable tier under
    the in-memory cache."""

    @pytest.mark.parametrize("jobs", (1, 2))
    def test_restart_round_trip_is_byte_identical(self, tmp_path, jobs):
        path = tmp_path / "v.sqlite"
        sources = ["poly ~id", "auto id", "$(fun x -> x)"]
        with TypecheckService(
            SessionConfig(), jobs=jobs, persistent_cache=str(path)
        ) as service:
            first = [r.result.to_dict() for r in service.check_many(sources)]
            assert service.stats.misses == len(sources)
        # "Restart": a brand-new service (fresh in-memory cache) over
        # the same file answers every verdict from the durable tier.
        with TypecheckService(
            SessionConfig(), jobs=jobs, persistent_cache=str(path)
        ) as service:
            second = [r.result.to_dict() for r in service.check_many(sources)]
            assert service.stats.misses == 0
            assert service.stats.persistent_hits == len(sources)
            assert service.stats.hits == len(sources)
        for before, after in zip(first, second):
            after = dict(after)
            # Serving metadata differs by design (a persistent hit is a
            # hit); every verdict field is byte-identical.
            assert after.pop("cached") is True
            after.pop("duration_ms", None)
            before = dict(before)
            assert before.pop("cached") is False
            before.pop("duration_ms", None)
            assert before == after

    def test_serial_and_pooled_share_the_same_bytes(self, tmp_path):
        path = tmp_path / "v.sqlite"
        sources = ["poly ~id", "auto id"]
        with TypecheckService(
            SessionConfig(), jobs=2, persistent_cache=str(path)
        ) as service:
            service.check_many(sources)
        with TypecheckService(
            SessionConfig(), jobs=1, persistent_cache=str(path)
        ) as service:
            warmed = service.check_many(sources)
            assert service.stats.persistent_hits == len(sources)
        fresh = TypecheckService(SessionConfig(), jobs=1)
        try:
            computed = fresh.check_many(sources)
        finally:
            fresh.close()
        for warm, cold in zip(warmed, computed):
            warm_doc = dict(warm.result.to_dict())
            cold_doc = dict(cold.result.to_dict())
            warm_doc.pop("cached"), cold_doc.pop("cached")
            warm_doc.pop("duration_ms", None), cold_doc.pop("duration_ms", None)
            assert warm_doc == cold_doc

    def test_volatile_fml91x_never_persisted_but_fuel_verdicts_are(
        self, tmp_path
    ):
        path = tmp_path / "v.sqlite"
        plan = FaultPlan(raise_at=(0,))
        with TypecheckService(
            SessionConfig(fault_plan=plan),
            max_retries=0,
            retry_backoff=0.0,
            quarantine=False,
            persistent_cache=str(path),
        ) as service:
            degraded = service.check("poly ~id").result
            assert degraded.diagnostics[0].code == "FML911"
            assert len(service.persistent_cache) == 0
        # The deterministic fuel verdict (FML901) IS persisted.
        with TypecheckService(
            SessionConfig(fuel=2), persistent_cache=str(path)
        ) as service:
            fuelled = service.check("poly ~id").result
            assert fuelled.diagnostics[0].code == "FML901"
            assert len(service.persistent_cache) == 1
        with TypecheckService(
            SessionConfig(fuel=2), persistent_cache=str(path)
        ) as service:
            again = service.check("poly ~id")
            assert again.result.diagnostics[0].code == "FML901"
            assert service.stats.persistent_hits == 1

    def test_persistent_promotion_respects_the_memory_bound(self, tmp_path):
        path = tmp_path / "v.sqlite"
        sources = ["poly ~id", "auto id", "1 + 2"]
        with TypecheckService(
            SessionConfig(), persistent_cache=str(path)
        ) as service:
            service.check_many(sources)
        # A tiny in-memory tier: every durable hit is promoted through
        # the same bounded `_remember` path as a computed verdict.
        with TypecheckService(
            SessionConfig(), persistent_cache=str(path), max_cache_entries=1
        ) as service:
            service.check_many(sources)
            assert service.stats.persistent_hits == len(sources)
            assert len(service._cache) == 1

    def test_cache_off_disables_the_persistent_tier_too(self, tmp_path):
        path = tmp_path / "v.sqlite"
        with TypecheckService(
            SessionConfig(), cache=False, persistent_cache=str(path)
        ) as service:
            service.check("poly ~id")
            assert len(service.persistent_cache) == 0
            service.check("poly ~id")
            assert service.stats.hits == 0

    def test_shared_instance_is_not_closed_with_the_service(self, tmp_path):
        cache = PersistentCache(tmp_path / "v.sqlite")
        with TypecheckService(SessionConfig(), persistent_cache=cache) as service:
            service.check("poly ~id")
        assert len(cache) == 1  # still usable: the caller owns it
        cache.close()

    def test_owned_path_is_closed_with_the_service(self, tmp_path):
        service = TypecheckService(
            SessionConfig(), persistent_cache=str(tmp_path / "v.sqlite")
        )
        service.check("poly ~id")
        service.close()
        assert service.persistent_cache is None
