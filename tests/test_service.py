"""The serving layer: TypecheckService parallelism, caching, records.

The acceptance bar: parallel execution is byte-deterministic against
the serial run (verdicts *and* cache flags), the cache measurably
serves repeats without re-running inference, configs are picklable for
worker reconstruction, and `check_programs` remains a thin alias so no
third entrypoint family exists.
"""

import json
import pickle

import pytest

from repro.api import Result, check_programs
from repro.corpus.examples import EXAMPLES
from repro.service import (
    CheckRequest,
    CheckResponse,
    SessionConfig,
    TypecheckService,
    env_fingerprint,
)

CORPUS = [x.source for x in EXAMPLES if not x.extra_env]
SMALL_BATCH = ["poly ~id", "auto id", "1 + 2", "single ~id"]


def stripped(response: CheckResponse) -> dict:
    """The response payload minus wall-clock timing (the one field
    allowed to differ between otherwise identical runs)."""
    payload = response.to_dict()
    payload.pop("duration_ms", None)
    return payload


class TestSessionConfig:
    def test_picklable_and_buildable(self):
        config = SessionConfig(engine="hmf", strategy="eliminator")
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        session = clone.build()
        assert session.engine == "hmf" and session.strategy == "eliminator"

    def test_bad_config_fails_eagerly(self):
        with pytest.raises(ValueError):
            TypecheckService(SessionConfig(engine="mlton"))
        with pytest.raises(ValueError):
            TypecheckService(SessionConfig(strategy="zealous"))
        with pytest.raises(ValueError):
            TypecheckService(jobs=0)

    def test_to_dict(self):
        assert SessionConfig().to_dict() == {
            "engine": "freezeml",
            "strategy": "variable",
            "value_restriction": True,
            "fuel": None,
            "max_depth": None,
            "lint": False,
        }


class TestCacheKey:
    def test_key_is_byte_exact_in_the_source(self):
        # Deliberate: spans in diagnostics and the echoed `source` field
        # depend on the precise text (a trailing newline moves an at-EOF
        # parse error from 1:9 to 2:1), so whitespace variants must not
        # share a cached result.
        service = TypecheckService()
        assert service.cache_key("poly ~id") == service.cache_key("poly ~id")
        assert service.cache_key("poly ~id") != service.cache_key("poly ~id\n")
        assert service.cache_key("poly ~id") != service.cache_key("poly id")

    def test_key_respects_config(self):
        service = TypecheckService()
        other = TypecheckService(SessionConfig(engine="hmf"))
        assert service.cache_key("poly ~id") != other.cache_key("poly ~id")

    def test_whitespace_variants_keep_their_own_spans(self):
        # The failure mode a loose cache key would reintroduce.
        with TypecheckService() as service:
            bare, newline = service.check_many(["fun x ->", "fun x ->\n"])
        assert not bare.cached and not newline.cached
        (d1,) = bare.result.diagnostics
        (d2,) = newline.result.diagnostics
        assert (d1.span.line, d1.span.column) == (1, 9)
        assert (d2.span.line, d2.span.column) == (2, 1)
        assert bare.result.source == "fun x ->"
        assert newline.result.source == "fun x ->\n"

    def test_fingerprint_tracks_environment(self):
        base = TypecheckService()
        extended = TypecheckService()
        extended._session.define("extra", "42")
        assert env_fingerprint(base._session) != env_fingerprint(
            extended._session
        )


class TestCaching:
    def test_repeats_are_served_from_cache(self):
        with TypecheckService() as service:
            first, second = service.check_many(["poly ~id", "poly ~id"])
            assert first.result.type_str == second.result.type_str
            assert not first.cached and second.cached
            assert second.result.cached and second.result.duration_ms == 0.0
            assert service.stats.hits == 1 and service.stats.misses == 1

            # A later batch hits the persistent cache too.
            (third,) = service.check_many(["poly ~id"])
            assert third.cached and third.result.type_str == "Int * Bool"
            assert service.stats.hits == 2

    def test_failures_are_cached_like_successes(self):
        with TypecheckService() as service:
            first, second = service.check_many(["auto id", "auto id"])
            assert not first.ok and not second.ok
            assert second.cached
            assert second.result.diagnostics == first.result.diagnostics

    def test_no_cache_mode(self):
        with TypecheckService(cache=False) as service:
            responses = service.check_many(["poly ~id", "poly ~id"])
            assert [r.cached for r in responses] == [False, False]
            assert service.stats.hits == 0 and service.stats.misses == 2

    def test_clear_cache(self):
        with TypecheckService() as service:
            service.check("poly ~id")
            service.clear_cache()
            response = service.check("poly ~id")
            assert not response.cached

    def test_cache_eviction_bound(self):
        with TypecheckService(max_cache_entries=2) as service:
            service.check_many(["1", "2", "3"])
            assert len(service._cache) == 2
            # "1" (the oldest) was evicted; "3" is still warm.
            assert not service.check("1").cached
            assert service.check("3").cached

    def test_duration_is_populated_on_misses(self):
        with TypecheckService() as service:
            response = service.check("poly ~id")
            assert not response.cached
            assert response.duration_ms > 0
            assert response.result.duration_ms == response.duration_ms


class TestParallel:
    def test_parallel_matches_serial_byte_for_byte(self):
        """The acceptance check: verdicts (and cache flags) identical
        at any worker count, over the whole Figure 1 corpus."""
        batch = CORPUS + CORPUS[:5]  # include duplicates to exercise the cache
        with TypecheckService(jobs=1) as serial:
            serial_payload = [stripped(r) for r in serial.check_many(batch)]
        with TypecheckService(jobs=2) as parallel:
            parallel_payload = [stripped(r) for r in parallel.check_many(batch)]
        assert json.dumps(serial_payload) == json.dumps(parallel_payload)

    def test_parallel_without_cache_matches_too(self):
        with TypecheckService(jobs=2, cache=False) as service:
            responses = service.check_many(SMALL_BATCH)
        with TypecheckService(jobs=1, cache=False) as service:
            expected = service.check_many(SMALL_BATCH)
        assert [stripped(r) for r in responses] == [stripped(r) for r in expected]

    def test_pool_is_reused_across_batches(self):
        with TypecheckService(jobs=2) as service:
            service.check_many(["1 + 2"])
            pool = service._pool
            service.check_many(["true"])
            assert service._pool is pool
        assert service._pool is None  # closed on exit

    def test_registered_engine_reaches_workers(self):
        # The engine *instance* ships with the pool initargs, so an
        # engine registered only in the parent works in workers too.
        from repro.engines import register_engine, unregister_engine
        from tests.test_engines import DummyEngine

        register_engine(DummyEngine)
        try:
            config = SessionConfig(engine="dummy")
            with TypecheckService(config, jobs=2, cache=False) as service:
                responses = service.check_many(["poly id", "true"])
            assert [r.result.type_str for r in responses] == ["Int", "Int"]
        finally:
            unregister_engine("dummy")

    def test_worker_sessions_are_isolated(self):
        # A definition in one program never leaks into another, even
        # when both run in the same worker process.
        programs = ["let leak = 42 in leak", "leak", "let leak = true in leak"]
        with TypecheckService(jobs=2, cache=False) as service:
            responses = service.check_many(programs)
        assert [r.ok for r in responses] == [True, False, True]


class TestRecords:
    def test_request_labels_echo_back(self):
        with TypecheckService() as service:
            response = service.check(CheckRequest(source="1 + 2", label="lib/a.fml"))
        assert response.request.label == "lib/a.fml"
        assert response.to_dict()["label"] == "lib/a.fml"

    def test_response_to_dict_is_json_ready_and_stable(self):
        with TypecheckService() as service:
            payload = service.check("poly ~id").to_dict()
        json.dumps(payload)  # round-trips
        assert list(payload) == [
            "label",
            "request",
            "engine",
            "ok",
            "source",
            "type",
            "rendered",
            "cached",
            "diagnostics",
            "duration_ms",
        ]
        assert payload["engine"] == "freezeml"
        assert payload["cached"] is False

    def test_result_to_dict_without_service_omits_duration(self):
        from repro.api import Session

        payload = Session().check("poly ~id").to_dict()
        assert "duration_ms" not in payload
        assert payload["cached"] is False
        assert payload["engine"] == "freezeml"

    def test_stats_to_dict(self):
        with TypecheckService() as service:
            service.check_many(["1", "1"])
            stats = service.stats.to_dict()
        assert stats["requests"] == 2
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["check_ms"] > 0


class TestCheckProgramsAlias:
    """`check_programs` stays, as a thin service veneer (no third
    entrypoint family)."""

    def test_results_shape_unchanged(self):
        with pytest.deprecated_call():
            results = check_programs(["poly ~id", "auto id"])
        assert [isinstance(r, Result) for r in results] == [True, True]
        assert [r.ok for r in results] == [True, False]
        assert results[0].engine == "freezeml"

    def test_alias_routes_through_the_service(self):
        # Duplicates come back cache-marked: proof the service ran them.
        with pytest.deprecated_call():
            results = check_programs(["poly ~id", "poly ~id"])
        assert [r.cached for r in results] == [False, True]

    def test_alias_accepts_service_options(self):
        with pytest.deprecated_call():
            results = check_programs(["poly ~id"] * 3, jobs=2, cache=False)
        assert [r.ok for r in results] == [True] * 3
        assert [r.cached for r in results] == [False] * 3

    def test_docstring_carries_deprecation_note(self):
        assert "deprecated" in check_programs.__doc__.lower()

    def test_deprecation_warning_fires_at_the_call_site(self):
        # The `.. deprecated:: 1.1` note is now a real warning, aimed
        # at the caller's frame (stacklevel=2) so `-W error` users see
        # their own line, not api.py internals.
        with pytest.warns(DeprecationWarning, match="TypecheckService") as record:
            check_programs(["poly ~id"])
        (warning,) = record.list
        assert warning.filename == __file__
