"""Spans, error codes and the exception -> Diagnostic pipeline."""

import json

import pytest

from repro.diagnostics import (
    Diagnostic,
    Severity,
    Span,
    diagnostic_from_error,
    error_span,
    offending_types,
    render_all,
)
from repro.errors import (
    EvaluationError,
    FreezeMLError,
    KindError,
    MLTypeError,
    MonomorphismError,
    OccursCheckError,
    ParseError,
    ScopeError,
    SkolemEscapeError,
    SystemFTypeError,
    TypeInferenceError,
    UnboundVariableError,
    UnificationError,
)
from repro.syntax.parser import parse_term, parse_term_spanned, parse_type


def t(src):
    return parse_type(src)


class TestSpan:
    def test_point_and_str(self):
        span = Span.point(3, 7)
        assert (span.end_line, span.end_column) == (3, 8)
        assert str(span) == "3:7"

    def test_whole_source(self):
        span = Span.whole_source("ab\ncdef")
        assert span == Span(1, 1, 2, 5)
        assert Span.whole_source("") == Span(1, 1, 1, 1)

    def test_cover(self):
        a, b = Span(1, 4, 1, 9), Span(2, 1, 2, 3)
        assert a.cover(b) == Span(1, 4, 2, 3)
        assert b.cover(a) == Span(1, 4, 2, 3)


class TestErrorCodes:
    CODES = {
        FreezeMLError: "FML000",
        ParseError: "FML001",
        ScopeError: "FML002",
        KindError: "FML003",
        TypeInferenceError: "FML100",
        UnboundVariableError: "FML101",
        UnificationError: "FML102",
        OccursCheckError: "FML103",
        SkolemEscapeError: "FML104",
        MonomorphismError: "FML105",
        SystemFTypeError: "FML200",
        MLTypeError: "FML201",
        EvaluationError: "FML300",
    }

    def test_every_class_declares_a_stable_code(self):
        for cls, code in self.CODES.items():
            assert cls.code == code

    def test_codes_are_unique(self):
        codes = list(self.CODES.values())
        assert len(set(codes)) == len(codes)


class TestOccursCheckFields:
    """The satellite fix: var/ty are the name and the type; left/right
    are both types, consistent with the UnificationError contract."""

    def test_fields(self):
        from repro.core.types import TVar

        err = OccursCheckError("%1", t("List a"))
        assert err.var == "%1"
        assert err.ty == t("List a")
        assert err.left == TVar("%1")
        assert err.right == t("List a")

    def test_left_right_are_types_across_the_family(self):
        from repro.core.types import Type

        for err in (
            UnificationError(t("Int"), t("Bool")),
            OccursCheckError("a", t("List a")),
        ):
            assert isinstance(err.left, Type)
            assert isinstance(err.right, Type)


class TestDiagnosticFromError:
    def test_unification_offending_types(self):
        diag = diagnostic_from_error(UnificationError(t("Int"), t("Bool")))
        assert diag.code == "FML102"
        assert diag.types == ("Int", "Bool")

    def test_occurs_check_offending_types(self):
        diag = diagnostic_from_error(OccursCheckError("a", t("List a")))
        assert diag.code == "FML103"
        assert diag.types == ("a", "List a")

    def test_monomorphism_offending_type(self):
        diag = diagnostic_from_error(MonomorphismError("a", t("forall b. b -> b")))
        assert diag.types == ("forall b. b -> b",)

    def test_plain_errors_have_no_types(self):
        assert offending_types(UnboundVariableError("x")) == ()

    def test_parse_error_span_and_bare_message(self):
        with pytest.raises(ParseError) as excinfo:
            parse_term("fun -> 1")
        diag = diagnostic_from_error(excinfo.value)
        assert diag.code == "FML001"
        assert diag.span == Span(1, 5, 1, 7)
        # The location lives in the span; the message stays bare.
        assert "1:5" not in diag.message

    def test_fallback_span_used_when_unlocated(self):
        fallback = Span.whole_source("some text")
        diag = diagnostic_from_error(UnboundVariableError("x"), fallback_span=fallback)
        assert diag.span == fallback

    def test_attached_span_wins_over_fallback(self):
        err = UnificationError(t("Int"), t("Bool"))
        err.span = Span(2, 3, 2, 9)
        diag = diagnostic_from_error(err, fallback_span=Span.whole_source("x"))
        assert diag.span == Span(2, 3, 2, 9)
        assert error_span(err) == Span(2, 3, 2, 9)

    def test_unknown_exception_gets_generic_code(self):
        diag = diagnostic_from_error(RuntimeError("boom"))
        assert diag.code == "FML000"
        assert diag.message == "boom"


class TestRendering:
    def test_render_line(self):
        diag = Diagnostic("FML102", "cannot unify", span=Span(1, 5, 1, 9))
        assert diag.render() == "error[FML102] at 1:5: cannot unify"

    def test_render_without_span(self):
        diag = Diagnostic("FML000", "boom")
        assert diag.render() == "error[FML000]: boom"

    def test_render_all_prefixes_file(self):
        diag = Diagnostic("FML001", "bad", span=Span(2, 1, 2, 4))
        (line,) = render_all([diag], file="prog.fml")
        assert line == "prog.fml:2:1: error[FML001]: bad"

    def test_to_dict_roundtrips_through_json(self):
        diag = Diagnostic(
            "FML102",
            "cannot unify",
            severity=Severity.ERROR,
            span=Span(1, 2, 3, 4),
            types=("Int", "Bool"),
        )
        payload = json.loads(json.dumps(diag.to_dict()))
        assert payload["code"] == "FML102"
        assert payload["severity"] == "error"
        assert payload["span"] == {
            "line": 1,
            "column": 2,
            "end_line": 3,
            "end_column": 4,
        }
        assert payload["types"] == ["Int", "Bool"]


class TestSpanTable:
    def test_every_node_is_located(self):
        from repro.core.terms import subterms

        term, spans = parse_term_spanned("let f = fun x -> x in poly (f 1)")
        for node in subterms(term):
            assert spans.get(node) is not None, repr(node)

    def test_spans_are_tight(self):
        term, spans = parse_term_spanned("choose id auto")
        # The whole application covers the line; the inner application
        # `choose id` stops before `auto`.
        whole = spans.get(term)
        inner = spans.get(term.fn)
        assert (whole.column, whole.end_column) == (1, 15)
        assert (inner.column, inner.end_column) == (1, 10)

    def test_multiline_positions(self):
        term, spans = parse_term_spanned("# comment\nlet x = 1 in\n  x + 2")
        span = spans.get(term)
        assert span.line == 2
        assert span.end_line == 3

    def test_sugar_located_at_operator(self):
        term, spans = parse_term_spanned("poly $(fun x -> x)")
        dollar = term.arg
        span = spans.get(dollar)
        assert (span.line, span.column) == (1, 6)

    def test_identical_subterms_have_distinct_spans(self):
        term, spans = parse_term_spanned("pair id id")
        first, second = term.fn.arg, term.arg
        assert first == second  # equal dataclasses...
        assert spans.get(first) != spans.get(second)  # ...distinct places
