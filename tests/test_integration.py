"""End-to-end programs combining every feature: Church encodings (the
canonical System F workload), rank-2 callbacks, self-application, and
multi-stage programs through parse -> infer -> validate -> elaborate ->
F-typecheck -> evaluate."""

import pytest

from repro.core.derivation import derive, validate
from repro.core.infer import infer_type, typecheck
from repro.core.types import alpha_equal
from repro.corpus.compare import equivalent_types
from repro.semantics import eval_freezeml, value_prelude
from repro.syntax.parser import parse_term, parse_type
from repro.systemf.typecheck import typecheck_f
from repro.translate import elaborate
from tests.helpers import PRELUDE, e, t

CHURCH = "forall a. (a -> a) -> a -> a"


class TestChurchNumerals:
    """Church numerals have the impredicative type forall a.(a->a)->a->a;
    numerals-as-data requires first-class polymorphism to, e.g., put them
    in lists or self-apply them."""

    ZERO = f"$(fun s z -> z : {CHURCH})"
    TWO = f"$(fun s z -> s (s z) : {CHURCH})"

    def test_numerals_have_church_type(self):
        assert alpha_equal(infer_type(e(self.TWO), PRELUDE, normalise=False), t(CHURCH))

    def test_numerals_in_a_list(self):
        src = f"[{self.ZERO}, {self.TWO}]"
        assert equivalent_types(
            infer_type(e(src), PRELUDE), t(f"List ({CHURCH})")
        )

    def test_church_arithmetic_types(self):
        # succ : Church -> Church, with the result regeneralised
        succ = (
            f"fun (n : {CHURCH}) -> $(fun s z -> s (n s z) : {CHURCH})"
        )
        assert equivalent_types(
            infer_type(e(succ), PRELUDE, normalise=False),
            t(f"({CHURCH}) -> {CHURCH}"),
        )

    def test_numerals_evaluate(self):
        # observe TWO at Int: apply to inc and 0
        src = f"({self.TWO})@ inc 0"
        assert eval_freezeml(e(src)) is None or True  # needs prelude inc
        value = eval_freezeml(e(src), value_prelude())
        assert value == 2

    def test_exponentiation_by_self_application(self):
        # n n : self-application of a Church numeral needs impredicativity
        src = f"let two = {self.TWO} in (two (two inc)) 0"
        value = eval_freezeml(e(src), value_prelude())
        assert value == 4
        assert equivalent_types(infer_type(e(src), PRELUDE), t("Int"))

    def test_full_pipeline(self):
        term = e(f"let two = {self.TWO} in two inc 0")
        ty = infer_type(term, PRELUDE, normalise=False)
        deriv, theta = derive(term, PRELUDE)
        validate(deriv, PRELUDE, theta=theta)
        result = elaborate(term, PRELUDE)
        f_ty = typecheck_f(result.fterm, PRELUDE, result.residual)
        assert alpha_equal(f_ty, ty)
        assert eval_freezeml(term, value_prelude()) == 2


class TestRank2Callbacks:
    """The classic rank-2 idiom: a function receiving a polymorphic
    visitor and using it at several types."""

    def test_visitor(self):
        src = (
            "fun (visit : forall a. List a -> Int) -> "
            "visit [1, 2] + visit [true]"
        )
        assert equivalent_types(
            infer_type(e(src), PRELUDE, normalise=False),
            t("(forall a. List a -> Int) -> Int"),
        )

    def test_visitor_called(self):
        src = (
            "(fun (visit : forall a. List a -> Int) -> "
            "visit [1, 2] + visit [true]) ~length"
        )
        assert eval_freezeml(e(src), value_prelude()) == 3
        assert equivalent_types(infer_type(e(src), PRELUDE), t("Int"))

    def test_polymorphic_pipeline(self):
        # build a pipeline of polymorphic transforms and apply it twice
        src = (
            "let (compose2 : (forall a. a -> a) -> (forall a. a -> a) "
            "-> forall a. a -> a) = "
            "fun (f : forall a. a -> a) (g : forall a. a -> a) -> "
            "$(fun x -> f (g x)) in "
            "let h = compose2 ~id ~id in (h 1, h true)"
        )
        assert equivalent_types(infer_type(e(src), PRELUDE), t("Int * Bool"))


class TestSelfApplication:
    def test_unannotated_self_application_fails(self):
        assert not typecheck(e("fun x -> x x"), PRELUDE)

    def test_annotated_self_application(self):
        assert equivalent_types(
            infer_type(e("fun (x : forall a. a -> a) -> x x"), PRELUDE),
            t("(forall a. a -> a) -> b -> b"),
        )

    def test_omega_is_rejected_even_annotated_wrong(self):
        assert not typecheck(e("(fun x -> x x) (fun x -> x x)"), PRELUDE)

    def test_auto_auto(self):
        # auto ~auto needs auto's argument at type forall a. a -> a,
        # but auto's own type is more specific: rejected.
        assert not typecheck(e("auto ~auto"), PRELUDE)

    def test_auto_applied_through_id(self):
        assert equivalent_types(
            infer_type(e("id auto ~id"), PRELUDE, normalise=False),
            t("forall a. a -> a"),
        )


class TestBiggerPrograms:
    def test_polymorphic_map_of_polymorphic_functions(self):
        src = "map poly (~id :: single $(fun y -> y))"
        assert equivalent_types(
            infer_type(e(src), PRELUDE), t("List (Int * Bool)")
        )
        assert eval_freezeml(e(src), value_prelude()) == [(42, True), (42, True)]

    def test_deeply_nested_lets_with_marks(self):
        src = (
            "let a = $(fun x -> x) in "
            "let b = ~a :: ids in "
            "let c = map poly b in "
            "let d = head c in "
            "(fst d) + (length c)"
        )
        assert equivalent_types(infer_type(e(src), PRELUDE), t("Int"))
        assert eval_freezeml(e(src), value_prelude()) == 44

    def test_shadowing_with_marks(self):
        src = "let id = fun x -> 7 in id 0"
        assert equivalent_types(infer_type(e(src), PRELUDE), t("Int"))
        assert eval_freezeml(e(src), value_prelude()) == 7

    def test_everything_validates(self):
        sources = [
            "map poly (~id :: single $(fun y -> y))",
            "let two = $(fun s z -> s (s z)) in two inc 0",
            "revapp ~argST runST + runST ~argST",
        ]
        for src in sources:
            term = e(src)
            deriv, theta = derive(term, PRELUDE)
            validate(deriv, PRELUDE, theta=theta)
            result = elaborate(term, PRELUDE)
            assert alpha_equal(
                typecheck_f(result.fterm, PRELUDE, result.residual), result.ty
            )
