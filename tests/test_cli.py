"""CLI surface tests: REPL command dispatch, golden transcripts, and the
``check`` subcommand's human/JSON output -- all through the Session API."""

import io
import json
import textwrap

import pytest

from repro.cli import Repl, main, run_check


def run_lines(*lines: str) -> str:
    out = io.StringIO()
    repl = Repl(out=out)
    for line in lines:
        alive = repl.handle(line)
        if not alive:
            break
    return out.getvalue()


class TestInference:
    def test_type_query(self):
        assert ": Int * Bool" in run_lines("poly ~id")

    def test_error_reported_not_raised(self):
        output = run_lines("auto id")
        assert "error:" in output

    def test_parse_error_reported(self):
        assert "error:" in run_lines("let = in")


class TestCommands:
    def test_run(self):
        assert "= (42, true)" in run_lines(":run poly ~id")

    def test_elaborate(self):
        output = run_lines(":f poly ~id")
        assert "C[[-]] = poly id" in output

    def test_derive(self):
        output = run_lines(":derive single ~id")
        assert "[App]" in output and "[Freeze]" in output

    def test_hmf(self):
        assert "(HMF) : Int * Bool" in run_lines(":hmf poly id")

    def test_let_binding_persists(self):
        output = run_lines(
            ":let myid = $(fun x -> x)",
            "poly ~myid",
            ":env",
        )
        assert "myid : forall a. a -> a" in output
        assert ": Int * Bool" in output

    def test_let_value_usable_at_runtime(self):
        output = run_lines(":let three = 1 + 2", ":run three + 39")
        assert "= 42" in output

    def test_strategy_switch(self):
        output = run_lines(
            "(head ids) 42",
            ":strategy e",
            "(head ids) 42",
        )
        assert "error:" in output  # first attempt fails
        assert ": Int" in output  # second succeeds

    def test_unknown_command(self):
        assert "unknown command" in run_lines(":wibble")

    def test_help_and_quit(self):
        out = io.StringIO()
        repl = Repl(out=out)
        assert repl.handle(":help")
        assert not repl.handle(":quit")
        assert "infer and print" in out.getvalue()

    def test_blank_and_comment_lines(self):
        assert run_lines("", "# comment") == ""

    def test_main_one_shot(self):
        assert main(["-c", "poly ~id"]) == 0

    def test_main_one_shot_error_exits_nonzero(self):
        # The satellite fix: a chunk that errors must not exit 0.
        assert main(["-c", "auto id"]) == 1
        assert main(["-c", "poly ~id", "auto id"]) == 1
        assert main(["-c", "let = in"]) == 1
        # Unknown commands and usage errors count too.
        assert main(["-c", ":wibble"]) == 1
        assert main(["-c", ":strategy zealous"]) == 1
        assert main(["-c", ":let 1bad = 2"]) == 1

    def test_repl_is_a_thin_session_client(self):
        from repro.api import Session

        session = Session()
        repl = Repl(out=io.StringIO(), session=session)
        repl.handle(":let three = 3")
        # State lives in the session, not the REPL.
        assert session.bindings == {"three": "Int"}
        assert session.infer("three").type_str == "Int"


class TestGoldenTranscript:
    """One scripted session exercising every REPL command, checked
    against its full expected transcript."""

    SCRIPT = (
        "poly ~id",
        ":run poly ~id",
        ":f poly ~id",
        ":derive single ~id",
        ":hmf poly id",
        ":let myid = $(fun x -> x)",
        "poly ~myid",
        ":env",
        ":strategy e",
        "(head ids) 42",
        ":strategy v",
        "auto id",
        "let = in",
        ":wibble",
        ":strategy zealous",
        ":let 1bad = 2",
    )

    EXPECTED = textwrap.dedent("""\
          : Int * Bool
          = (42, true)
          C[[-]] = poly id
          :      Int * Bool
          [App] single ~id : List (forall a. a -> a)
            [Var] single : (forall a. a -> a) -> List (forall a. a -> a)
            [Freeze] ~id : forall a. a -> a
          (HMF) : Int * Bool
          myid : forall a. a -> a
          : Int * Bool
          myid : forall a. a -> a
          instantiation strategy: eliminator
          : Int
          instantiation strategy: variable
        error: cannot unify `forall a. a -> a` with `%1 -> %1` [FML102 at 1:1]
        error: expected IDENT, found EQUALS '=' [FML001 at 1:5]
        unknown command :wibble (:help)
        usage: :strategy v|e
        usage: :let x = <term>
        """)

    def test_transcript(self):
        out = io.StringIO()
        repl = Repl(out=out)
        for line in self.SCRIPT:
            assert repl.handle(line)
        assert out.getvalue() == self.EXPECTED
        # Two request failures + unknown command + two usage errors.
        assert repl.error_count == 5

    def test_env_on_fresh_session(self):
        assert "(only the Figure 2 prelude)" in run_lines(":env")


class TestCheckSubcommand:
    @pytest.fixture()
    def tree(self, tmp_path):
        good = tmp_path / "good.fml"
        good.write_text("poly ~id\n")
        program = tmp_path / "program.fml"
        program.write_text(
            "sig f : forall a. a -> a\ndef f x = x\nmain = f 42\n"
        )
        bad = tmp_path / "bad.fml"
        bad.write_text("# a comment line\nauto id\n")
        return good, program, bad

    def test_human_output_and_exit_codes(self, tree, capsys):
        good, program, bad = tree
        assert run_check([str(good), str(program)]) == 0
        out = capsys.readouterr().out
        assert f"{good}: ok: Int * Bool" in out
        assert f"{program}: ok: Int" in out

        assert run_check([str(good), str(bad)]) == 1
        out = capsys.readouterr().out
        # Diagnostics point at the real location: line 2, past the comment.
        assert f"{bad}:2:1: error[FML102]: cannot unify" in out

    def test_json_output_is_machine_readable(self, tree, capsys):
        good, _program, bad = tree
        assert run_check([str(good), str(bad), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "freezeml"
        ok, fail = payload["programs"]
        assert ok["file"] == str(good)
        assert ok["ok"] is True and ok["type"] == "Int * Bool"
        assert fail["ok"] is False and fail["type"] is None
        (diag,) = fail["diagnostics"]
        assert diag["code"] == "FML102"
        assert diag["severity"] == "error"
        assert diag["span"]["line"] == 2 and diag["span"]["column"] == 1
        assert len(diag["types"]) == 2

    def test_engine_flag(self, tmp_path, capsys):
        unmarked = tmp_path / "unmarked.fml"
        unmarked.write_text("runST argST\n")
        assert run_check([str(unmarked)]) == 1
        capsys.readouterr()
        assert run_check([str(unmarked), "--engine=hmf"]) == 0
        assert "ok: Int" in capsys.readouterr().out

    def test_usage_errors_exit_2(self, tree, capsys):
        good, *_ = tree
        assert run_check([]) == 2
        assert run_check([str(good), "--engine=mlton"]) == 2
        assert run_check([str(good), "--wat"]) == 2
        assert run_check([str(good) + ".missing"]) == 2
        assert main(["check"]) == 2

    def test_main_dispatches_check(self, tree, capsys):
        good, *_ = tree
        assert main(["check", str(good)]) == 0


class TestCheckServiceOptions:
    """The serving-flavoured `check` options: stdin, --jobs, --no-cache."""

    @pytest.fixture()
    def good(self, tmp_path):
        path = tmp_path / "good.fml"
        path.write_text("poly ~id\n")
        return path

    def test_stdin_dash(self, capsys, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO("poly ~id\n"))
        assert run_check(["-"]) == 0
        assert "<stdin>: ok: Int * Bool" in capsys.readouterr().out

    def test_repeated_stdin_dash_reuses_the_first_read(self, capsys, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO("poly ~id\n"))
        assert run_check(["-", "-"]) == 0
        out = capsys.readouterr().out
        assert out.count("<stdin>: ok: Int * Bool") == 2

    def test_stdin_dash_json_and_failure(self, capsys, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO("auto id\n"))
        assert run_check(["-", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        (program,) = payload["programs"]
        assert program["file"] == "<stdin>" and program["ok"] is False

    def test_strategy_flag_threaded_through(self, tmp_path, capsys):
        eliminator_only = tmp_path / "e.fml"
        eliminator_only.write_text("(head ids) 42\n")
        assert run_check([str(eliminator_only)]) == 1
        capsys.readouterr()
        assert run_check([str(eliminator_only), "--strategy=e"]) == 0
        assert "ok: Int" in capsys.readouterr().out

    def test_jobs_parallel_json_identical_to_serial(self, tmp_path, capsys):
        # The acceptance criterion, at CLI level: byte-identical --json.
        sources = ["poly ~id", "auto id", "single ~id", "1 + 2", "poly ~id"]
        files = []
        for i, src in enumerate(sources):
            path = tmp_path / f"p{i}.fml"
            path.write_text(src + "\n")
            files.append(str(path))
        assert run_check([*files, "--json"]) == 1
        serial = capsys.readouterr().out
        assert run_check([*files, "--jobs", "2", "--json"]) == 1
        parallel = capsys.readouterr().out
        assert serial == parallel
        # The duplicate program is cache-marked in both runs.
        payload = json.loads(serial)
        assert payload["programs"][-1]["cached"] is True
        assert "duration_ms" not in payload["programs"][0]

    def test_jobs_equals_form_and_cached_marker(self, good, capsys):
        assert run_check([str(good), str(good), "--jobs=2"]) == 0
        out = capsys.readouterr().out
        assert f"{good}: ok: Int * Bool\n" in out
        assert f"{good}: ok: Int * Bool (cached)\n" in out

    def test_no_cache_flag(self, good, capsys):
        assert run_check([str(good), str(good), "--no-cache"]) == 0
        assert "(cached)" not in capsys.readouterr().out

    def test_bad_jobs_usage_errors(self, good, capsys):
        assert run_check([str(good), "--jobs"]) == 2
        assert run_check([str(good), "--jobs", "zero"]) == 2
        assert run_check([str(good), "--jobs=0"]) == 2

    def test_parse_check_args_pure(self):
        from repro.cli import parse_check_args

        opts = parse_check_args(
            ["a.fml", "-", "--jobs", "4", "--no-cache", "--engine=hmf"]
        )
        assert opts["files"] == ["a.fml", "-"]
        assert opts["jobs"] == 4
        assert opts["cache"] is False
        assert opts["engine"] == "hmf"
        assert opts["stats"] is False
        assert parse_check_args(["a.fml", "--stats"])["stats"] is True
        assert isinstance(parse_check_args(["--wat"]), str)

    def test_stats_prints_service_counters_to_stderr(self, good, capsys):
        assert run_check([str(good), str(good), "--stats"]) == 0
        captured = capsys.readouterr()
        assert "(cached)" in captured.out
        stats = json.loads(captured.err)
        assert stats["requests"] == 2
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["shed"] == 0 and stats["coalesced"] == 0
        # Timing-free by contract: stderr stays byte-reproducible.
        assert "check_ms" not in stats

    def test_stats_stderr_is_reproducible_and_json_stdout_untouched(
        self, good, capsys
    ):
        args = [str(good), str(good), "--json", "--stats", "--jobs", "2"]
        assert run_check(args) == 0
        first = capsys.readouterr()
        assert run_check(args) == 0
        second = capsys.readouterr()
        assert first.out == second.out
        assert first.err == second.err
        json.loads(first.out)  # --json stdout is still pure JSON


class TestBenchCommand:
    def test_default_command_writes_json(self):
        from repro.cli import BENCH_DEFAULT_SUITES, build_bench_command

        cmd, output = build_bench_command([], python="py")
        assert output == "BENCH_solver.json"
        assert cmd[:4] == ["py", "-m", "pytest", "-q"]
        assert list(BENCH_DEFAULT_SUITES) == cmd[4:-1]
        assert cmd[-1] == "--benchmark-json=BENCH_solver.json"

    def test_quick_mode_disables_timing(self):
        from repro.cli import build_bench_command

        cmd, output = build_bench_command(["--quick"], python="py")
        assert output == ""
        assert "--benchmark-disable" in cmd
        assert not any(a.startswith("--benchmark-json") for a in cmd)

    def test_all_and_output_flags(self):
        from repro.cli import build_bench_command

        cmd, output = build_bench_command(
            ["--all", "--output=out.json"], python="py"
        )
        assert output == "out.json"
        assert "benchmarks" in cmd
        assert cmd[-1] == "--benchmark-json=out.json"

    def test_env_scaling_suite_is_in_the_default_set(self):
        from repro.cli import BENCH_DEFAULT_SUITES

        assert "benchmarks/bench_env_scaling.py" in BENCH_DEFAULT_SUITES

    def test_suite_filter_selects_named_modules(self):
        from repro.cli import build_bench_command

        cmd, output = build_bench_command(
            ["--suite=solver,unification"], python="py"
        )
        assert output == "BENCH_solver.json"
        assert cmd[4:-1] == [
            "benchmarks/bench_solver.py",
            "benchmarks/bench_unification.py",
        ]

    def test_suite_filter_normalises_entry_spellings(self):
        from repro.cli import bench_suite_name

        assert bench_suite_name("solver") == "solver"
        assert bench_suite_name("bench_solver") == "solver"
        assert bench_suite_name("bench_solver.py") == "solver"
        assert bench_suite_name("benchmarks/bench_solver.py") == "solver"

    def test_suite_conflicts_with_all(self):
        from repro.cli import run_bench

        assert run_bench(["--all", "--suite=solver"]) == 2

    def test_unknown_suite_is_a_usage_error(self):
        from repro.cli import run_bench

        assert run_bench(["--suite=does_not_exist"]) == 2

    def test_group_filter_is_exported_to_the_pytest_subprocess(
        self, monkeypatch, tmp_path
    ):
        import subprocess

        from repro import cli

        seen = {}

        def fake_call(cmd, cwd=None, env=None):
            seen["env"] = env
            return 0

        monkeypatch.setattr(subprocess, "call", fake_call)
        assert cli.run_bench(["--quick", "--group=unify-*,solver-*"]) == 0
        assert seen["env"]["REPRO_BENCH_GROUPS"] == "unify-*,solver-*"

    def test_group_filter_deselects_other_groups(self, monkeypatch):
        """The conftest hook keeps only matching benchmark groups."""
        import fnmatch

        monkeypatch.setenv("REPRO_BENCH_GROUPS", "unify-path*")

        import importlib.util
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        spec = importlib.util.spec_from_file_location(
            "bench_conftest_under_test", root / "benchmarks" / "conftest.py"
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)

        class FakeMarker:
            def __init__(self, group):
                self.kwargs = {"group": group}

        class FakeItem:
            def __init__(self, group):
                self._m = FakeMarker(group) if group is not None else None

            def get_closest_marker(self, name):
                return self._m

        class FakeHook:
            def __init__(self):
                self.deselected = []

            def pytest_deselected(self, items):
                self.deselected.extend(items)

        class FakeConfig:
            hook = FakeHook()

        keep = FakeItem("unify-pathological")
        drop_group = FakeItem("serve-latency")
        drop_unmarked = FakeItem(None)
        items = [keep, drop_group, drop_unmarked]
        config = FakeConfig()
        mod.pytest_collection_modifyitems(config, items)
        assert items == [keep]
        assert set(config.hook.deselected) == {drop_group, drop_unmarked}

    def test_compare_rejects_quick_mode(self):
        from repro.cli import run_bench

        assert run_bench(["--quick", "--compare=whatever.json"]) == 2

    def test_compare_missing_baseline_is_a_usage_error(self, tmp_path):
        from repro.cli import run_bench

        assert run_bench([f"--compare={tmp_path / 'nope.json'}"]) == 2

    def test_compare_corrupt_baseline_is_a_usage_error(self, tmp_path):
        from repro.cli import run_bench

        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert run_bench([f"--compare={bad}"]) == 2

    @pytest.mark.parametrize(
        "fresh_p99, expected", ((60.0, 1), (42.0, 0)), ids=("regressed", "ok")
    )
    def test_compare_gates_on_the_p99_slo(
        self, tmp_path, monkeypatch, capsys, fresh_p99, expected
    ):
        """``bench --compare`` exits 1 when a recorded p99 regresses
        past the SLO.  The pytest subprocess is stubbed out: the stub
        writes the fresh JSON where ``--benchmark-json`` points, which
        is all ``run_bench`` sees of a real run."""
        import subprocess

        from repro.cli import run_bench

        doc = _slo_doc([("serve-load", "t[2]", {"p99_ms": 40.0})])
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(doc))
        fresh = _slo_doc([("serve-load", "t[2]", {"p99_ms": fresh_p99})])

        def fake_call(cmd, **kwargs):
            (json_arg,) = [
                a for a in cmd if a.startswith("--benchmark-json=")
            ]
            with open(json_arg.split("=", 1)[1], "w") as fh:
                json.dump(fresh, fh)
            return 0

        monkeypatch.setattr(subprocess, "call", fake_call)
        code = run_bench(
            [f"--output={tmp_path / 'fresh.json'}", f"--compare={baseline}"]
        )
        out = capsys.readouterr().out
        assert code == expected
        if expected:
            assert "SLO gate FAILED" in out and "serve-load:t[2]" in out
        else:
            assert "SLO gate: all recorded p99" in out


def _bench_doc(entries):
    return {
        "benchmarks": [
            {"group": group, "name": name, "stats": {"mean": mean}}
            for group, name, mean in entries
        ]
    }


class TestBenchComparison:
    def test_speedup_and_regression_rendering(self):
        from repro.cli import format_bench_comparison

        old = _bench_doc(
            [
                ("unify", "t[16]", 0.004),
                ("unify", "t[4]", 0.001),
                ("lets", "chain[8]", 0.010),
            ]
        )
        new = _bench_doc(
            [
                ("unify", "t[16]", 0.0005),  # 8x faster
                ("unify", "t[4]", 0.001),  # unchanged
                ("lets", "chain[8]", 0.020),  # 2x slower: regression
            ]
        )
        lines = format_bench_comparison(old, new)
        text = "\n".join(lines)
        assert "unify" in text and "8.00x" in text
        assert "** REGRESSION" in text
        # The regression flag is attached to the slowed benchmark only.
        flagged = [line for line in lines if "REGRESSION" in line]
        assert len(flagged) == 1 and "chain[8]" in flagged[0]

    def test_small_noise_is_not_flagged(self):
        from repro.cli import format_bench_comparison

        old = _bench_doc([("g", "a", 0.0100)])
        new = _bench_doc([("g", "a", 0.0105)])  # 5% slower: noise
        assert not any(
            "REGRESSION" in line for line in format_bench_comparison(old, new)
        )

    def test_disjoint_benchmarks_are_listed(self):
        from repro.cli import format_bench_comparison

        old = _bench_doc([("g", "gone", 0.01)])
        new = _bench_doc([("g", "fresh", 0.01)])
        text = "\n".join(format_bench_comparison(old, new))
        assert "only in baseline: g:gone" in text
        assert "only in new run: g:fresh" in text

    def test_geomean_per_group(self):
        from repro.cli import format_bench_comparison

        old = _bench_doc([("g", "a", 0.004), ("g", "b", 0.001)])
        new = _bench_doc([("g", "a", 0.001), ("g", "b", 0.001)])
        (header, *_rows) = format_bench_comparison(old, new)
        assert header.startswith("g  (geomean speedup 2.00x)")


def _slo_doc(entries):
    return {
        "benchmarks": [
            {
                "group": group,
                "name": name,
                "stats": {"mean": 0.01},
                "extra_info": extra,
            }
            for group, name, extra in entries
        ]
    }


class TestSloGate:
    """The p99 SLO gate over ``extra_info`` (pure, like the diff)."""

    def test_regression_past_threshold_is_a_violation(self):
        from repro.cli import slo_violations

        old = _slo_doc([("serve-load", "t[2]", {"p99_ms": 40.0})])
        new = _slo_doc([("serve-load", "t[2]", {"p99_ms": 60.0})])  # 1.5x
        assert slo_violations(old, new) == [
            ("serve-load", "t[2]", 40.0, 60.0)
        ]

    def test_within_threshold_passes(self):
        from repro.cli import slo_violations

        old = _slo_doc([("serve-load", "t[2]", {"p99_ms": 40.0})])
        new = _slo_doc([("serve-load", "t[2]", {"p99_ms": 48.0})])  # 1.2x
        assert slo_violations(old, new) == []

    def test_benchmarks_without_the_metric_are_ignored(self):
        from repro.cli import slo_violations

        old = _slo_doc(
            [
                ("serve-coalescing", "hot", {"dispatches": 3}),
                ("solver", "deep", {}),
            ]
        )
        new = _slo_doc(
            [
                ("serve-coalescing", "hot", {"dispatches": 900}),
                ("solver", "deep", {}),
            ]
        )
        assert slo_violations(old, new) == []

    def test_new_and_dropped_benchmarks_are_not_violations(self):
        from repro.cli import slo_violations

        old = _slo_doc([("serve-load", "gone", {"p99_ms": 40.0})])
        new = _slo_doc([("serve-load", "fresh", {"p99_ms": 999.0})])
        assert slo_violations(old, new) == []

    def test_custom_metric_and_threshold(self):
        from repro.cli import slo_violations

        old = _slo_doc([("serve-load", "t", {"p50_ms": 10.0})])
        new = _slo_doc([("serve-load", "t", {"p50_ms": 11.5})])
        assert slo_violations(old, new, metric="p50_ms") == []
        assert slo_violations(
            old, new, metric="p50_ms", threshold=1.10
        ) == [("serve-load", "t", 10.0, 11.5)]

    def test_zero_or_bogus_baseline_never_divides(self):
        from repro.cli import slo_violations

        old = _slo_doc([("g", "a", {"p99_ms": 0.0}), ("g", "b", {"p99_ms": "n/a"})])
        new = _slo_doc([("g", "a", {"p99_ms": 50.0}), ("g", "b", {"p99_ms": 50.0})])
        assert slo_violations(old, new) == []
