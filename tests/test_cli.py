"""REPL smoke tests (command dispatch, not terminal interaction)."""

import io

import pytest

from repro.cli import Repl


def run_lines(*lines: str) -> str:
    out = io.StringIO()
    repl = Repl(out=out)
    for line in lines:
        alive = repl.handle(line)
        if not alive:
            break
    return out.getvalue()


class TestInference:
    def test_type_query(self):
        assert ": Int * Bool" in run_lines("poly ~id")

    def test_error_reported_not_raised(self):
        output = run_lines("auto id")
        assert "error:" in output

    def test_parse_error_reported(self):
        assert "error:" in run_lines("let = in")


class TestCommands:
    def test_run(self):
        assert "= (42, true)" in run_lines(":run poly ~id")

    def test_elaborate(self):
        output = run_lines(":f poly ~id")
        assert "C[[-]] = poly id" in output

    def test_derive(self):
        output = run_lines(":derive single ~id")
        assert "[App]" in output and "[Freeze]" in output

    def test_hmf(self):
        assert "(HMF) : Int * Bool" in run_lines(":hmf poly id")

    def test_let_binding_persists(self):
        output = run_lines(
            ":let myid = $(fun x -> x)",
            "poly ~myid",
            ":env",
        )
        assert "myid : forall a. a -> a" in output
        assert ": Int * Bool" in output

    def test_let_value_usable_at_runtime(self):
        output = run_lines(":let three = 1 + 2", ":run three + 39")
        assert "= 42" in output

    def test_strategy_switch(self):
        output = run_lines(
            "(head ids) 42",
            ":strategy e",
            "(head ids) 42",
        )
        assert "error:" in output  # first attempt fails
        assert ": Int" in output  # second succeeds

    def test_unknown_command(self):
        assert "unknown command" in run_lines(":wibble")

    def test_help_and_quit(self):
        out = io.StringIO()
        repl = Repl(out=out)
        assert repl.handle(":help")
        assert not repl.handle(":quit")
        assert "infer and print" in out.getvalue()

    def test_blank_and_comment_lines(self):
        assert run_lines("", "# comment") == ""

    def test_main_one_shot(self):
        from repro.cli import main

        assert main(["-c", "poly ~id"]) == 0


class TestBenchCommand:
    def test_default_command_writes_json(self):
        from repro.cli import BENCH_DEFAULT_SUITES, build_bench_command

        cmd, output = build_bench_command([], python="py")
        assert output == "BENCH_solver.json"
        assert cmd[:4] == ["py", "-m", "pytest", "-q"]
        assert list(BENCH_DEFAULT_SUITES) == cmd[4:-1]
        assert cmd[-1] == "--benchmark-json=BENCH_solver.json"

    def test_quick_mode_disables_timing(self):
        from repro.cli import build_bench_command

        cmd, output = build_bench_command(["--quick"], python="py")
        assert output == ""
        assert "--benchmark-disable" in cmd
        assert not any(a.startswith("--benchmark-json") for a in cmd)

    def test_all_and_output_flags(self):
        from repro.cli import build_bench_command

        cmd, output = build_bench_command(
            ["--all", "--output=out.json"], python="py"
        )
        assert output == "out.json"
        assert "benchmarks" in cmd
        assert cmd[-1] == "--benchmark-json=out.json"
