"""Property-based tests for unification (Theorems 4 and 5)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kinds import Kind, KindEnv
from repro.core.subst import Subst
from repro.core.types import TVar, alpha_equal, ftv
from repro.core.unify import unify
from repro.errors import TypeInferenceError, UnificationError
from tests.helpers import fixed
from tests.strategies import monotypes, polytypes

FLEX = ("x", "y", "z")
RIGID = ("a", "b", "c")


def flex_env(kind=Kind.POLY):
    return KindEnv((n, kind) for n in FLEX)


DELTA = fixed(*RIGID)


@settings(max_examples=300)
@given(monotypes(var_names=FLEX + RIGID), monotypes(var_names=FLEX + RIGID))
def test_unify_sound(left, right):
    """Theorem 4: a returned unifier really unifies."""
    try:
        _theta, subst = unify(DELTA, flex_env(), left, right)
    except TypeInferenceError:
        return
    assert alpha_equal(subst(left), subst(right))


@settings(max_examples=300)
@given(monotypes(var_names=FLEX + RIGID), monotypes(var_names=FLEX + RIGID))
def test_unifier_idempotent(left, right):
    try:
        _theta, subst = unify(DELTA, flex_env(), left, right)
    except TypeInferenceError:
        return
    assert subst.is_idempotent()
    for name in FLEX:
        assert subst(subst(TVar(name))) == subst(TVar(name))


@settings(max_examples=200)
@given(
    monotypes(var_names=FLEX),
    st.fixed_dictionaries({n: monotypes(var_names=RIGID) for n in FLEX}),
)
def test_unify_complete_on_instances(pattern, assignment):
    """Theorem 5 (completeness): if sigma(A) = B for some sigma, then
    unify(A, B) succeeds and the unifier factors sigma."""
    sigma = Subst(assignment)
    ground = sigma(pattern)
    theta_out, subst = unify(DELTA, flex_env(), pattern, ground)
    # the unifier must agree with sigma on the pattern
    assert alpha_equal(subst(pattern), ground) or _factors(
        subst, sigma, pattern, theta_out
    )


def _factors(subst, sigma, pattern, theta_out):
    # there must be sigma'' with sigma = sigma'' . subst on pattern vars
    residual = Subst(
        {name: sigma(TVar(name)) for name in theta_out.names()}
    )
    return alpha_equal(residual(subst(pattern)), sigma(pattern))


@settings(max_examples=200)
@given(polytypes(var_names=RIGID))
def test_unify_reflexive(ty):
    """Any well-formed type unifies with itself via the identity."""
    try:
        _theta, subst = unify(DELTA, flex_env(), ty, ty)
    except TypeInferenceError:
        return  # ill-kinded generation (unbound binder names) is skipped
    for name in ftv(ty):
        assert subst(TVar(name)) == TVar(name)


@settings(max_examples=200)
@given(polytypes(var_names=RIGID))
def test_mono_variable_never_goes_poly(ty):
    """A MONO flexible variable unifies with `ty` only if `ty` is a
    monotype (the demotion discipline of Figure 15)."""
    from repro.core.types import is_monotype

    # the generator's binder alphabet (p, q, r) may leak as free rigid
    # variables; give them kinds so every input is well-scoped
    delta = fixed(*(RIGID + ("p", "q", "r")))
    theta = KindEnv([("m", Kind.MONO)])
    try:
        _theta_out, subst = unify(delta, theta, TVar("m"), ty)
    except TypeInferenceError:
        assert not is_monotype(ty) or "m" in ftv(ty)
        return
    bound = subst(TVar("m"))
    assert is_monotype(bound)


@settings(max_examples=200)
@given(monotypes(var_names=FLEX), monotypes(var_names=FLEX))
def test_unify_symmetric_up_to_solutions(left, right):
    """unify(A,B) and unify(B,A) succeed or fail together, and both
    unifiers equate the two types."""
    def attempt(l, r):
        try:
            return unify(DELTA, flex_env(), l, r)
        except TypeInferenceError:
            return None

    forward = attempt(left, right)
    backward = attempt(right, left)
    assert (forward is None) == (backward is None)
    if forward is not None:
        assert alpha_equal(forward[1](left), forward[1](right))
        assert alpha_equal(backward[1](left), backward[1](right))
