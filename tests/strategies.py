"""Hypothesis generators for types and terms.

Two families:

* random *types* (monotypes, guarded types, arbitrary System F types)
  over a small rigid-variable alphabet -- used by the unification and
  substitution property tests;
* random *well-typed ML terms*, built generatively so that every output
  typechecks by construction -- used by the conservativity (Theorem 1)
  and soundness property tests.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.terms import App, BoolLit, IntLit, Lam, Let, Var
from repro.core.types import (
    BOOL,
    INT,
    TCon,
    TForall,
    TVar,
    arrow,
    list_of,
    product,
)

RIGID_NAMES = ("a", "b", "c")
FLEX_NAMES = ("%x", "%y", "%z")

base_types = st.sampled_from([INT, BOOL])


def monotypes(var_names=RIGID_NAMES, max_leaves=6):
    """Quantifier-free types over the given variables."""
    if var_names:
        leaves = st.one_of(
            base_types, st.sampled_from([TVar(n) for n in var_names])
        )
    else:
        leaves = base_types
    return st.recursive(
        leaves,
        lambda inner: st.one_of(
            st.builds(arrow, inner, inner),
            st.builds(list_of, inner),
            st.builds(product, inner, inner),
        ),
        max_leaves=max_leaves,
    )


def polytypes(var_names=RIGID_NAMES, max_leaves=6):
    """Arbitrary System F types (quantifiers anywhere)."""
    binders = st.sampled_from(["p", "q", "r"])
    leaves = st.one_of(
        base_types,
        st.sampled_from([TVar(n) for n in var_names + ("p", "q", "r")]),
    )

    def extend(inner):
        return st.one_of(
            st.builds(arrow, inner, inner),
            st.builds(list_of, inner),
            st.builds(lambda b, t: TForall(b, t), binders, inner),
        )

    return st.recursive(leaves, extend, max_leaves=max_leaves)


# ---------------------------------------------------------------------------
# Well-typed ML term generation.  A term is generated together with its
# (structural) type; the generator only composes pieces that fit, so the
# output typechecks in ML -- and, by Theorem 1, in FreezeML.
# ---------------------------------------------------------------------------


@st.composite
def ml_terms(draw, depth: int = 3, env: tuple[tuple[str, object], ...] = ()):
    """Generate (term, type) pairs, well-typed in the empty prelude."""
    # Simple generative grammar keyed by a target type.
    target = draw(st.sampled_from(["Int", "Bool", "Int->Int"]))
    term = draw(_term_of(target, depth, dict(env)))
    return term, target


def _term_of(target: str, depth: int, env: dict):
    ground = {
        "Int": st.builds(IntLit, st.integers(min_value=0, max_value=99)),
        "Bool": st.builds(BoolLit, st.booleans()),
        "Int->Int": st.builds(lambda n: Lam("v", IntLit(n)), st.integers(0, 9)),
    }
    options = [ground[target]]
    for name, ty in env.items():
        if ty == target:
            options.append(st.just(Var(name)))
    if depth > 0:
        # let x = <t'> in <target>
        def make_let(inner_ty):
            return st.builds(
                lambda bound, body: Let("x%d" % depth, bound, body),
                _term_of(inner_ty, depth - 1, env),
                _term_of(target, depth - 1, {**env, "x%d" % depth: inner_ty}),
            )

        options.append(st.sampled_from(["Int", "Bool", "Int->Int"]).flatmap(make_let))
        # identity let + use: let f = \x.x in ... (polymorphic reuse)
        if target in ("Int", "Bool"):
            options.append(
                st.builds(
                    lambda body: Let("f%d" % depth, Lam("z", Var("z")), body),
                    _term_of(target, depth - 1, env).map(
                        lambda t: App(Var("f%d" % depth), t)
                    ),
                )
            )
        # application producing target
        if target == "Int":
            options.append(
                st.builds(
                    App,
                    _term_of("Int->Int", depth - 1, env),
                    _term_of("Int", depth - 1, env),
                )
            )
    return st.one_of(options)
