"""Unit tests for let typing: generalisation, the value restriction,
principality and annotated lets (Figure 16, lower half; Sections 2, 3.2)."""

import pytest

from repro.core.infer import infer_definition, infer_raw, typecheck
from repro.core.kinds import Kind
from repro.errors import (
    AnnotationError,
    SkolemEscapeError,
    TypeInferenceError,
    UnificationError,
)
from tests.helpers import PRELUDE, assert_infers, e, infer, t


class TestGeneralisation:
    def test_guarded_value_generalises(self):
        assert_infers("let f = fun x -> x in ~f", "forall a. a -> a")

    def test_plain_use_instantiates(self):
        assert_infers("let f = fun x -> x in f", "a -> a")

    def test_generalisation_order_is_occurrence_order(self):
        assert_infers("$(fun x y -> (x, y))", "forall a b. a -> b -> a * b")

    def test_quantifier_order_restored_by_gen(self):
        # Section 2 "Ordered Quantifiers": $pair' has canonical order
        assert_infers("$pair'", "forall a b. a -> b -> a * b")
        assert_infers("~pair'", "forall b a. a -> b -> a * b")

    def test_env_variables_not_generalised(self):
        # the lambda's parameter variable stays monomorphic inside
        assert_infers(
            "fun y -> let f = fun x -> y in ~f",
            "a -> forall b. b -> a",
        )


class TestValueRestriction:
    def test_non_value_not_generalised(self):
        # (single id) is an application: no generalisation
        assert not typecheck(e("let xs = single id in poly (head xs)"), PRELUDE)

    def test_non_value_variables_demoted(self):
        # bad3/bad4 (Section 3.2): residual variables become monomorphic in
        # *both* orders -- inference must be order-insensitive.
        bad3 = "fun (bot : forall a. a) -> let f = bot bot in (poly ~f, (f 42) + 1)"
        bad4 = "fun (bot : forall a. a) -> let f = bot bot in ((f 42) + 1, poly ~f)"
        assert not typecheck(e(bad3), PRELUDE)
        assert not typecheck(e(bad4), PRELUDE)

    def test_no_vr_generalises_non_values(self):
        # $(id id) generalises the application only in "pure FreezeML"
        src = "poly $(id id)"
        assert not typecheck(e(src), PRELUDE)
        assert typecheck(e(src), PRELUDE, value_restriction=False)

    def test_frozen_tail_lets_are_not_generalised_again(self):
        # $V freezes the generalised binding; the outer let sees a poly type
        assert_infers("let g = $(fun x -> x) in (g 1, g true)", "Int * Bool")


class TestPrincipality:
    def test_bad5_bad6_rejected(self):
        # the principal type for f is forall a. a -> a; the declarative
        # system may not pick Int -> Int instead (Section 3.2)
        assert not typecheck(e("let f = fun x -> x in ~f 42"), PRELUDE)
        assert not typecheck(e("let f = fun x -> x in id ~f 42"), PRELUDE)

    def test_let_bound_types_are_principal(self):
        from repro.core.check import principal_type_of
        from repro.core.types import alpha_equal

        ty, _kinds = principal_type_of(e("$(fun x -> x)"), PRELUDE)
        assert alpha_equal(ty, t("forall a. a -> a"))


class TestAnnotatedLet:
    def test_matching_annotation(self):
        assert_infers(
            "let (f : forall a. a -> a) = fun x -> x in (f 1, f true)",
            "Int * Bool",
        )

    def test_non_principal_annotation_allowed(self):
        # annotated lets may assign a *less general* type (unlike plain let)
        assert_infers(
            "let (f : Int -> Int) = fun x -> x in f 1",
            "Int",
        )
        # ...and then the polymorphic uses are gone:
        assert not typecheck(
            e("let (f : Int -> Int) = fun x -> x in f true"), PRELUDE
        )

    def test_wrong_annotation_rejected(self):
        assert not typecheck(
            e("let (f : Int -> Bool) = fun x -> x in f 1"), PRELUDE
        )

    def test_scoped_type_variables(self):
        # the annotation's quantifiers scope over the bound term
        assert_infers(
            "let (f : forall a. a -> a) = fun (x : a) -> x in f 3",
            "Int",
        )

    def test_skolem_escape_rejected(self):
        # the annotation variable may not leak into the ambient context:
        # here `a` would have to equal the outer parameter's type.
        src = "fun y -> let (f : forall a. a -> a) = fun (x : a) -> y in f"
        with pytest.raises((SkolemEscapeError, TypeInferenceError)):
            infer_raw(e(src), PRELUDE)

    def test_annotation_on_non_value_uses_term_polymorphism(self):
        # M not a guarded value: all quantifiers must come from M itself
        assert_infers(
            "let (f : forall a. a -> a) = head ids in (f 1, f true)",
            "Int * Bool",
        )

    def test_annotation_on_non_value_cannot_generalise(self):
        # single id : List (a -> a); the annotation would need generalisation
        assert not typecheck(
            e("let (xs : forall a. List (a -> a)) = single id in xs"), PRELUDE
        )


class TestDefinitions:
    def test_definition_generalises_guarded_values(self):
        # user-written binder `a` is kept; the generalised variable gets
        # the next free display name
        ty = infer_definition("auto'", e("fun (x : forall a. a -> a) -> x x"), PRELUDE)
        assert str(ty) == "forall b. (forall a. a -> a) -> b -> b"

    def test_definition_value_restriction(self):
        ty = infer_definition("ids2", e("[~id]"), PRELUDE)
        assert ty == t("List (forall a. a -> a)")

    def test_figure2_signatures_rederived(self):
        # F1-F4 recover the Figure 2 prelude entries
        from repro.core.types import alpha_equal

        cases = {
            "$(fun x -> x)": "forall a. a -> a",
            "[~id]": "List (forall a. a -> a)",
            "fun (x : forall a. a -> a) -> x ~x":
                "(forall a. a -> a) -> forall a. a -> a",
            "fun (x : forall a. a -> a) -> x x":
                "forall b. (forall a. a -> a) -> b -> b",
        }
        for src, expected in cases.items():
            ty = infer_definition("d", e(src), PRELUDE)
            assert alpha_equal(ty, t(expected)), src
