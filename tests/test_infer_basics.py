"""Unit tests for the inference algorithm: variables, lambdas, applications
(Figure 16, upper half)."""

import pytest

from repro.core.env import TypeEnv
from repro.core.infer import infer_raw, infer_type, typecheck
from repro.core.kinds import Kind
from repro.errors import (
    TypeInferenceError,
    UnboundVariableError,
    UnificationError,
)
from tests.helpers import PRELUDE, assert_infers, e, infer, t


class TestLiteralsAndVariables:
    def test_literals(self):
        assert infer("42") == t("Int")
        assert infer("true") == t("Bool")
        assert infer("false") == t("Bool")

    def test_unbound_variable(self):
        with pytest.raises(UnboundVariableError):
            infer_raw(e("nonexistent"))

    def test_plain_variable_instantiates(self):
        # id : forall a. a -> a  instantiates to  a -> a (fresh flexible)
        assert_infers("id", "a -> a")

    def test_frozen_variable_keeps_type(self):
        assert_infers("~id", "forall a. a -> a")

    def test_frozen_monomorphic_variable(self):
        assert_infers("~inc", "Int -> Int")
        assert_infers("inc", "Int -> Int")

    def test_instantiation_is_per_occurrence(self):
        # pair id id : each occurrence instantiated independently
        assert_infers("(id, id)", "(a -> a) * (b -> b)")

    def test_fresh_variables_are_poly_kinded(self):
        result = infer_raw(e("id"), PRELUDE)
        free = [k for _, k in result.theta_env.items()]
        assert all(k is Kind.POLY for k in free)


class TestLambdas:
    def test_unannotated_parameter_is_monomorphic(self):
        assert_infers("fun x -> x", "a -> a")
        assert_infers("fun x -> x + 1", "Int -> Int")

    def test_parameter_cannot_be_used_polymorphically(self):
        assert not typecheck(e("fun f -> (f 1, f true)"), PRELUDE)

    def test_annotated_parameter_polymorphic(self):
        assert_infers(
            "fun (f : forall a. a -> a) -> (f 1, f true)",
            "(forall a. a -> a) -> Int * Bool",
        )

    def test_lambda_kind_env_discharged(self):
        # the parameter's flexible variable must not leak into the subst
        result = infer_raw(e("fun x -> x"), PRELUDE)
        assert result.subst.is_identity() or all(
            name not in result.subst for name in result.theta_env.names()
        )

    def test_nested_lambdas(self):
        assert_infers("fun x y z -> y", "a -> b -> c -> b")


class TestApplications:
    def test_simple(self):
        assert_infers("inc 41", "Int")

    def test_argument_mismatch(self):
        assert not typecheck(e("inc true"), PRELUDE)

    def test_apply_non_function(self):
        assert not typecheck(e("42 1"), PRELUDE)

    def test_instantiation_with_polymorphic_type(self):
        # the Var rule's flexible vars are poly-kinded: choose ~id works
        assert_infers("choose ~id", "(forall a. a -> a) -> forall a. a -> a")

    def test_application_result_not_instantiated(self):
        # head ids : forall a. a -> a  -- terms are not implicitly instantiated
        assert_infers("head ids", "forall a. a -> a")

    def test_cannot_apply_uninstantiated_polytype(self):
        assert not typecheck(e("(head ids) 3"), PRELUDE)
        assert_infers("(head ids)@ 3", "Int")


class TestEnvironments:
    def test_custom_environment(self):
        env = TypeEnv([("weird", t("forall a. List a -> a * a"))])
        assert infer_type(e("weird"), env, normalise=True) == t("List a -> a * a")

    def test_shadowing(self):
        assert_infers("fun id -> id 3", "(Int -> a) -> a")

    def test_well_scoped_checked_first(self):
        from repro.errors import ScopeError

        with pytest.raises(ScopeError):
            infer_raw(e("fun (x : undeclared_tyvar) -> x"), PRELUDE)


class TestNormalisation:
    def test_display_names(self):
        ty = infer("fun x y -> (y, x)")
        assert str(ty) == "a -> b -> b * a"

    def test_generalised_names_pretty(self):
        ty = infer("$(fun x y -> x)")
        assert str(ty) == "forall a b. a -> b -> a"
