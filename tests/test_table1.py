"""Table 1 (Appendix A): failure counts per system and annotation regime.
The FreezeML column is *measured* -- through the unified ``repro.api``
session (``verdicts.measured_failures``); the other columns reproduce the
recorded literature data the paper itself tabulates.  Experiment E3."""

from repro.baselines.verdicts import (
    RECORDED_FAILURES,
    REGIMES,
    SECTION_AE_IDS,
    TABLE1_RECORDED,
    measured_failures,
)


def freezeml_failures(regime: str) -> list[str]:
    """Measure which of the 32 A-E examples FreezeML fails under a regime."""
    return measured_failures(regime, engine="freezeml")


def test_section_ae_has_32_examples():
    assert len(SECTION_AE_IDS) == 32


def test_freezeml_measured_failure_sets():
    assert freezeml_failures("nothing") == ["A8", "B1", "B2", "E1"]
    assert freezeml_failures("binders") == ["A8", "E1"]
    assert freezeml_failures("terms") == ["A8", "E1"]


def test_freezeml_measured_counts_match_recorded_table():
    for regime in REGIMES:
        measured = len(freezeml_failures(regime))
        assert measured == TABLE1_RECORDED["FreezeML"][regime], regime


def test_recorded_failure_sets_match_counts():
    for system, by_regime in RECORDED_FAILURES.items():
        for regime, failures in by_regime.items():
            assert len(failures) == TABLE1_RECORDED[system][regime], (
                system,
                regime,
            )


def test_ranking_matches_paper():
    # "MLF ... first ... HML second ... FreezeML third"
    nothing = sorted(TABLE1_RECORDED.items(), key=lambda kv: kv[1]["nothing"])
    assert [name for name, _ in nothing[:3]] == ["MLF", "HML", "FreezeML"]
