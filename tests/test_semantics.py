"""Evaluator tests: the runtime prelude behaves per Figure 2, and the
three routes (direct FreezeML, via System F elaboration, via E[[-]])
agree on observable results."""

import pytest

from repro.errors import EvaluationError
from repro.semantics import eval_freezeml, eval_system_f, run, value_prelude
from repro.semantics.values import STComp, show_value
from repro.syntax.parser import parse_term
from repro.translate import elaborate, f_to_freezeml
from tests.helpers import PRELUDE


class TestBasicEvaluation:
    def test_literals(self):
        assert run("42") == 42
        assert run("true") is True

    def test_arithmetic(self):
        assert run("1 + 2 + 39") == 42

    def test_lambda_application(self):
        assert run("(fun x y -> x) 1 2") == 1

    def test_let(self):
        assert run("let x = 5 in x + x") == 10

    def test_freeze_is_runtime_noop(self):
        assert run("~inc 1") == run("inc 1") == 2

    def test_generalisation_is_runtime_noop(self):
        assert run("$(fun x -> x) 5") == 5

    def test_instantiation_is_runtime_noop(self):
        assert run("(head ids)@ 3") == 3

    def test_unbound_variable(self):
        with pytest.raises(EvaluationError):
            run("ghost")

    def test_apply_non_function(self):
        with pytest.raises(EvaluationError):
            run("1 2")


class TestPrelude:
    def test_lists(self):
        assert run("[1, 2, 3]") == [1, 2, 3]
        assert run("length [1, 2, 3]") == 3
        assert run("head [7, 8]") == 7
        assert run("tail [7, 8]") == [8]
        assert run("single 5") == [5]
        assert run("[1] ++ [2, 3]") == [1, 2, 3]
        assert run("map inc [1, 2]") == [2, 3]

    def test_empty_list_errors(self):
        with pytest.raises(EvaluationError):
            run("head []")
        with pytest.raises(EvaluationError):
            run("tail []")

    def test_pairs(self):
        assert run("(1, true)") == (1, True)
        assert run("fst (1, true)") == 1
        assert run("snd (1, true)") is True

    def test_choose_picks_first(self):
        assert run("choose 1 2") == 1

    def test_poly(self):
        assert run("poly ~id") == (42, True)

    def test_app_revapp(self):
        assert run("app inc 1") == 2
        assert run("revapp 1 inc") == 2

    def test_auto(self):
        assert run("auto ~id 9") == 9

    def test_st_simulation(self):
        assert run("runST ~argST") == 1
        assert run("app runST ~argST") == 1
        assert run("revapp ~argST runST") == 1

    def test_prelude_isolated_between_calls(self):
        env1 = value_prelude()
        env2 = value_prelude()
        assert env1 is not env2
        assert env1["ids"] == env2["ids"]


class TestCorpusPrograms:
    CASES = [
        ("poly $(fun x -> x)", (42, True)),
        ("map poly (single ~id)", [(42, True)]),
        ("(single inc ++ single id)", None),  # list of functions; just runs
        ("k $(fun x -> (h x)@) l", None),
        ("let f = revapp ~id in f poly", (42, True)),
        ("choose [] ids", []),
        ("length (tail ids)", 0),
    ]

    @pytest.mark.parametrize("src,expected", CASES)
    def test_runs(self, src, expected):
        env = value_prelude()
        env["k"] = lambda x: lambda xs: x
        env["h"] = lambda n: lambda x: x
        env["l"] = []
        value = eval_freezeml(parse_term(src), env)
        if expected is not None:
            assert value == expected


class TestAgreementAcrossRoutes:
    """Direct evaluation agrees with evaluation after elaboration."""

    SOURCES = [
        "poly ~id",
        "(head ids)@ 3",
        "let f = revapp ~id in f poly",
        "poly $(fun x -> x)",
        "1 + 2",
        "(auto ~id)@ 5",
        "runST ~argST",
    ]

    @pytest.mark.parametrize("src", SOURCES)
    def test_direct_vs_elaborated(self, src):
        term = parse_term(src)
        direct = eval_freezeml(term)
        elaborated = elaborate(term, PRELUDE)
        via_f = eval_system_f(elaborated.fterm)
        assert direct == via_f, src

    def test_f_to_freezeml_preserves_behaviour(self):
        from repro.systemf.syntax import FApp, FVar

        fterm = FApp(FVar("poly"), FVar("id"))
        direct = eval_system_f(fterm)
        translated = f_to_freezeml(fterm, PRELUDE)
        assert eval_freezeml(translated) == direct == (42, True)


class TestShowValue:
    def test_rendering(self):
        assert show_value(42) == "42"
        assert show_value(True) == "true"
        assert show_value([1, 2]) == "[1, 2]"
        assert show_value((1, False)) == "(1, false)"
        assert show_value(lambda x: x) == "<function>"
        assert show_value(STComp(lambda s: 1)) == "<ST computation>"
