"""Integration: every Figure 1 example infers the paper's reported type
(or is rejected where the paper shows ✕).  This is experiment E1.

The verdicts route through :func:`repro.corpus.compare.check_example`,
i.e. the unified ``repro.api`` session -- the same code path the REPL
and the ``check`` subcommand use."""

import pytest

from repro.corpus.compare import check_example
from repro.corpus.examples import BAD_EXAMPLES, EXAMPLES, TEXT_EXAMPLES


@pytest.mark.parametrize("example", EXAMPLES, ids=[x.id for x in EXAMPLES])
def test_figure1(example):
    verdict = check_example(example)
    assert verdict.agrees, verdict.describe()


@pytest.mark.parametrize(
    "example", TEXT_EXAMPLES, ids=[x.id for x in TEXT_EXAMPLES]
)
def test_section2_prose(example):
    verdict = check_example(example)
    assert verdict.agrees, verdict.describe()


@pytest.mark.parametrize(
    "example", BAD_EXAMPLES, ids=[x.id for x in BAD_EXAMPLES]
)
def test_negative_suite(example):
    verdict = check_example(example)
    assert not verdict.ok, f"{example.id} must be rejected"


def test_f10_requires_dropping_value_restriction():
    from repro.corpus.examples import example_by_id
    from repro.core.infer import typecheck

    f10 = example_by_id("F10")
    assert not typecheck(f10.term(), f10.env())
    assert typecheck(f10.term(), f10.env(), value_restriction=False)


def test_counts_match_paper():
    """Figure 1 has 49 rows counting the • variants (16 A, 2 B, 11 C, 5 D,
    4 E, 11 F); we cover them all plus the Section 2 prose examples and
    the negative suite."""
    assert len(EXAMPLES) == 49
    sections = {"A": 16, "B": 2, "C": 11, "D": 5, "E": 4, "F": 11}
    for section, count in sections.items():
        assert sum(1 for x in EXAMPLES if x.section == section) == count
    well_typed = [x for x in EXAMPLES if x.well_typed]
    assert len(well_typed) == len(EXAMPLES) - 3  # A8, E1, E3 are the only ✕
