"""Theorems 2 and 3: type-preserving translations between FreezeML and
System F (Sections 4.1, 4.2; Appendix D example).  Experiment E6."""

import pytest

from repro.core.infer import infer_type
from repro.core.types import INT, TVar, alpha_equal, arrow
from repro.corpus.compare import equivalent_types
from repro.corpus.examples import EXAMPLES, TEXT_EXAMPLES
from repro.corpus.signatures import prelude
from repro.syntax.parser import parse_term, parse_type
from repro.systemf.syntax import (
    FApp,
    FIntLit,
    FLam,
    FTyAbs,
    FTyApp,
    FVar,
    f_subterms,
    flet,
)
from repro.systemf.typecheck import typecheck_f
from repro.translate import elaborate, f_to_freezeml

PRELUDE = prelude()
WELL_TYPED = [
    x for x in EXAMPLES + TEXT_EXAMPLES if x.well_typed and x.flag != "no-vr"
]


class TestTheorem3:
    """FreezeML -> System F preserves types (checked by re-typechecking)."""

    @pytest.mark.parametrize("example", WELL_TYPED, ids=[x.id for x in WELL_TYPED])
    def test_corpus_elaborates(self, example):
        result = elaborate(example.term(), example.env())
        f_type = typecheck_f(result.fterm, example.env(), result.residual)
        assert alpha_equal(f_type, result.ty), (
            f"{example.id}: elaborated to {result.fterm} : {f_type}, "
            f"but inference said {result.ty}"
        )

    def test_variables_become_type_applications(self):
        result = elaborate(parse_term("id 3"), PRELUDE)
        ty_apps = [s for s in f_subterms(result.fterm) if isinstance(s, FTyApp)]
        assert len(ty_apps) == 1
        assert ty_apps[0].ty_arg == INT

    def test_frozen_variables_stay_plain(self):
        result = elaborate(parse_term("~id"), PRELUDE)
        assert result.fterm == FVar("id")

    def test_generalising_let_becomes_type_abstraction(self):
        result = elaborate(parse_term("$(fun x -> x)"), PRELUDE)
        tyabs = [s for s in f_subterms(result.fterm) if isinstance(s, FTyAbs)]
        assert len(tyabs) == 1

    def test_nonvalue_let_has_no_type_abstraction(self):
        result = elaborate(parse_term("(head ids)@ 3"), PRELUDE)
        tyabs = [s for s in f_subterms(result.fterm) if isinstance(s, FTyAbs)]
        assert tyabs == []

    def test_appendix_d_example(self):
        """C[[let app = fun f z -> f z in app ~auto ~id]] (Appendix D).

        The whole translated term has type ``forall a. a -> a`` exactly as
        the appendix reports.  With ``app : forall a b. (a -> b) -> a -> b``
        applied to ``auto`` and ``id``, the recorded instantiation is
        ``a := forall a. a -> a`` and ``b := forall a. a -> a`` (the
        appendix's rendering of the first type argument as an arrow type
        does not correspond to any instantiation of app's quantifiers; our
        System F typechecker validates the elaborated term, so we assert
        the type-correct reading).
        """
        term = parse_term("let app = fun f z -> f z in app ~auto ~id")
        result = elaborate(term, PRELUDE)
        f_type = typecheck_f(result.fterm, PRELUDE, result.residual)
        assert alpha_equal(f_type, parse_type("forall a. a -> a"))
        ty_args = [
            s.ty_arg for s in f_subterms(result.fterm) if isinstance(s, FTyApp)
        ]
        assert len(ty_args) == 2
        assert all(
            alpha_equal(ty, parse_type("forall a. a -> a")) for ty in ty_args
        )


class TestTheorem2:
    """System F -> FreezeML preserves types (checked by re-inferring)."""

    POLY_ID = FTyAbs("a", FLam("x", TVar("a"), FVar("x")))

    SAMPLES = [
        POLY_ID,
        FTyApp(POLY_ID, INT),
        FApp(FTyApp(POLY_ID, INT), FIntLit(3)),
        FApp(FVar("poly"), FVar("id")),
        FLam("f", parse_type("forall a. a -> a"), FApp(FVar("poly"), FVar("f"))),
        flet("i", parse_type("forall a. a -> a"), POLY_ID,
             FApp(FTyApp(FVar("i"), INT), FIntLit(1))),
        FTyAbs("b", FLam("x", parse_type("forall a. a -> a"),
                         FApp(FTyApp(FVar("x"), arrow(TVar("b"), TVar("b"))),
                              FTyApp(FVar("x"), TVar("b"))))),
        FApp(FVar("head"), FVar("ids")) if False else FTyApp(FVar("head"), parse_type("forall a. a -> a")),
    ]

    @pytest.mark.parametrize("fterm", SAMPLES, ids=[str(i) for i in range(len(SAMPLES))])
    def test_translation_preserves_type(self, fterm):
        f_type = typecheck_f(fterm, PRELUDE)
        freezeml_term = f_to_freezeml(fterm, PRELUDE)
        inferred = infer_type(freezeml_term, PRELUDE, normalise=False)
        assert equivalent_types(inferred, f_type), (
            f"{fterm} : {f_type} translated to {freezeml_term} : {inferred}"
        )

    def test_variables_frozen(self):
        from repro.core.terms import FrozenVar

        assert f_to_freezeml(FVar("id"), PRELUDE) == FrozenVar("id")

    def test_values_translate_to_values(self):
        from repro.core.terms import is_value

        for fterm in self.SAMPLES:
            from repro.systemf.syntax import is_f_value

            if is_f_value(fterm):
                assert is_value(f_to_freezeml(fterm, PRELUDE)), str(fterm)


class TestRoundTrips:
    """F -> FreezeML -> F preserves typability and the type."""

    @pytest.mark.parametrize("fterm", TestTheorem2.SAMPLES,
                             ids=[str(i) for i in range(len(TestTheorem2.SAMPLES))])
    def test_roundtrip_type(self, fterm):
        f_type = typecheck_f(fterm, PRELUDE)
        back = elaborate(f_to_freezeml(fterm, PRELUDE), PRELUDE)
        rechecked = typecheck_f(back.fterm, PRELUDE, back.residual)
        assert equivalent_types(rechecked, f_type)
